package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant, preserving schedule order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending-event queue.
//
// All simulation code — event callbacks and process bodies — runs under the
// engine's strict handoff discipline, so engine state never needs locking.
// Calling engine methods from goroutines outside the simulation is not
// supported.
type Engine struct {
	now      Time
	events   eventHeap
	seq      uint64
	executed uint64

	// yield is signalled by a process when it parks or exits, handing
	// control back to the engine loop.
	yield chan struct{}

	procs   int // live (not yet finished) processes
	live    map[*Proc]struct{}
	stopped bool

	// id names the engine in affinity diagnostics; dead marks an engine
	// whose simulation was torn down by Shutdown. busy detects concurrent
	// scheduling from two goroutines (see touch).
	id   uint64
	dead bool
	busy atomic.Int32

	// Trace, when non-nil, receives a line per traced event. Models call
	// Tracef to emit them.
	Trace func(t Time, msg string)

	// TraceEv, when non-nil, receives structured trace lines: the emitting
	// component and the event kind travel beside the text instead of being
	// re-derived from it. Models call Tracev to emit them.
	TraceEv func(t Time, comp, kind, msg string)

	// obs receives span open/close and metric samples; nil disables the
	// structured observability layer entirely (the common case — every
	// instrumentation site guards on Observing, so a run without an
	// observer allocates and formats nothing).
	obs     Observer
	spanSeq uint64
}

// Attr is one key=value attribute on a span.
type Attr struct {
	Key string
	Val int64
}

// SpanID identifies one span within its engine. The zero SpanID is the
// "observability disabled" sentinel: SpanOpen returns it when no observer
// is installed, and SpanClose ignores it, so instrumentation sites need no
// guard around the close path.
type SpanID uint64

// Observer receives the structured observability stream: typed spans
// bracketing pipeline stages and virtual-clock metric samples. All calls
// happen under the engine's single-threaded handoff discipline, in a
// deterministic order for a given simulation.
type Observer interface {
	// SpanOpen announces a span. at may lie in the future when the stage's
	// schedule is known at open time (cut-through wire occupancy).
	SpanOpen(id SpanID, at Time, comp, kind string, attrs []Attr)
	// SpanClose ends a span. at may lie in the future (see SpanCloseAt).
	SpanClose(id SpanID, at Time)
	// MetricSample records one point of a virtual-time series.
	MetricSample(at Time, comp, name string, value float64)
	// Shutdown is called by Engine.Shutdown so observers can force-close
	// spans still open when a simulation is torn down.
	Shutdown(at Time)
}

// teeObserver fans the stream out to two observers, letting a second
// Attach coexist with an earlier one.
type teeObserver struct{ a, b Observer }

func (t teeObserver) SpanOpen(id SpanID, at Time, comp, kind string, attrs []Attr) {
	t.a.SpanOpen(id, at, comp, kind, attrs)
	t.b.SpanOpen(id, at, comp, kind, attrs)
}
func (t teeObserver) SpanClose(id SpanID, at Time) { t.a.SpanClose(id, at); t.b.SpanClose(id, at) }
func (t teeObserver) MetricSample(at Time, comp, name string, v float64) {
	t.a.MetricSample(at, comp, name, v)
	t.b.MetricSample(at, comp, name, v)
}
func (t teeObserver) Shutdown(at Time) { t.a.Shutdown(at); t.b.Shutdown(at) }

// engineSeq hands out engine ids for affinity diagnostics.
var engineSeq atomic.Uint64

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		id:    engineSeq.Add(1),
		yield: make(chan struct{}),
		live:  map[*Proc]struct{}{},
	}
}

// ID returns the engine's process-unique id (used in diagnostics).
func (e *Engine) ID() uint64 { return e.id }

// mustOwn panics when p belongs to a different engine than e. It is the
// engine-affinity guard: with many isolated engines running concurrently
// (one per experiment cell), accidentally sharing a Chan, Signal,
// Resource or Server across engines would corrupt both simulations
// silently — this turns the bug into an immediate diagnostic.
func (e *Engine) mustOwn(p *Proc, what string) {
	if p.e != e {
		panic(fmt.Sprintf(
			"sim: engine affinity violation: proc %q of engine #%d called %s on an object of engine #%d",
			p.name, p.e.id, what, e.id))
	}
}

// mustAlive panics when the engine was shut down: a scheduling call on a
// dead engine means a stale reference leaked out of a finished
// experiment cell (the classic cross-cell sharing bug).
func (e *Engine) mustAlive(what string) {
	if e.dead {
		panic(fmt.Sprintf(
			"sim: engine #%d used after Shutdown (%s): stale reference from a finished cell?", e.id, what))
	}
}

// touch brackets a state mutation with a compare-and-swap marker. Legal
// use is strictly single-threaded (the handoff discipline), so a CAS
// collision means two goroutines are inside the same engine at once —
// almost always an object shared across concurrently-running engines.
func (e *Engine) touch(what string) {
	if !e.busy.CompareAndSwap(0, 1) {
		panic(fmt.Sprintf(
			"sim: engine #%d touched concurrently from two goroutines (%s): cross-engine sharing?", e.id, what))
	}
}

// untouch releases the marker set by touch.
func (e *Engine) untouch() { e.busy.Store(0) }

// Shutdown terminates every parked process so their goroutines exit. Call
// it when a simulation is abandoned (testbed teardown); the engine must
// not be running. The engine remains usable only for inspection afterward.
func (e *Engine) Shutdown() {
	e.dead = true
	if e.obs != nil {
		e.obs.Shutdown(e.now)
	}
	for p := range e.live {
		if p.done {
			continue
		}
		p.kill = true
		p.resume()
	}
	e.live = map[*Proc]struct{}{}
	e.events = nil
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...interface{}) {
	if e.Trace != nil {
		e.Trace(e.now, fmt.Sprintf(format, args...))
	}
}

// Traced reports whether any trace hook is installed; models use it to
// skip formatting work on untraced runs.
func (e *Engine) Traced() bool { return e.Trace != nil || e.TraceEv != nil }

// Tracev emits a structured trace line carrying the emitting component and
// the event kind ("fault", "retry", ...). It prefers the structured hook
// and falls back to the plain one so legacy observers still see the text.
func (e *Engine) Tracev(comp, kind, format string, args ...interface{}) {
	if e.TraceEv != nil {
		e.TraceEv(e.now, comp, kind, fmt.Sprintf(format, args...))
	} else if e.Trace != nil {
		e.Trace(e.now, fmt.Sprintf(format, args...))
	}
}

// SetObserver installs obs on the engine's observability stream. A second
// call tees to both observers rather than silently replacing the first.
func (e *Engine) SetObserver(obs Observer) {
	if e.obs != nil {
		e.obs = teeObserver{e.obs, obs}
		return
	}
	e.obs = obs
}

// Observing reports whether an observer is installed. Instrumentation
// sites guard attribute construction on it so disabled runs stay free.
func (e *Engine) Observing() bool { return e.obs != nil }

// SpanOpen opens a span starting now and returns its id (0 when no
// observer is installed). Span ids are per-engine, so concurrent isolated
// engines produce identical streams regardless of worker interleaving.
func (e *Engine) SpanOpen(comp, kind string, attrs ...Attr) SpanID {
	return e.SpanOpenAt(e.now, comp, kind, attrs...)
}

// SpanOpenAt opens a span whose start time is known explicitly — possibly
// in the future, for stages whose schedule is decided at call time (a
// cut-through wire reservation occupies the link later). Starts before now
// are allowed down to 0; future starts must be closed at or after them.
func (e *Engine) SpanOpenAt(at Time, comp, kind string, attrs ...Attr) SpanID {
	if e.obs == nil {
		return 0
	}
	if at < 0 {
		at = 0
	}
	e.spanSeq++
	id := SpanID(e.spanSeq)
	e.obs.SpanOpen(id, at, comp, kind, attrs)
	return id
}

// SpanClose ends a span now. Closing the zero SpanID is a no-op.
func (e *Engine) SpanClose(id SpanID) { e.SpanCloseAt(id, e.now) }

// SpanCloseAt ends a span at an explicit time, possibly in the future —
// used when a stage's completion instant is already known at scheduling
// time (a posted write's delivery, a reserved DMA's finish).
func (e *Engine) SpanCloseAt(id SpanID, at Time) {
	if id == 0 || e.obs == nil {
		return
	}
	if at < e.now {
		at = e.now
	}
	e.obs.SpanClose(id, at)
}

// Metric records one sample of a virtual-time metric series (queue depth,
// in-flight bytes, link utilization) when an observer is installed.
func (e *Engine) Metric(comp, name string, value float64) {
	if e.obs != nil {
		e.obs.MetricSample(e.now, comp, name, value)
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently corrupt causality. Scheduling on a shut-down engine,
// or concurrently with another goroutine, panics with an engine-affinity
// diagnostic.
func (e *Engine) At(t Time, fn func()) {
	e.mustAlive("At")
	e.touch("At")
	defer e.untouch()
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains or Stop is
// called. Processes blocked on signals with no pending wakeup are considered
// quiescent; Run returns with them still parked.
func (e *Engine) Run() {
	e.mustAlive("Run")
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.executed++
		ev.fn()
	}
}

// RunUntil executes events until virtual time t is reached (events at
// exactly t still run), the queue drains, or Stop is called.
func (e *Engine) RunUntil(t Time) {
	e.mustAlive("RunUntil")
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.executed++
		ev.fn()
	}
	if e.now < t && !e.stopped {
		e.now = t
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Executed reports the total number of events the engine has run — a
// deterministic measure of simulation work (virtual-event throughput
// benchmarks divide it by wall time).
func (e *Engine) Executed() uint64 { return e.executed }

// Live reports the number of processes that have started but not finished.
func (e *Engine) Live() int { return e.procs }
