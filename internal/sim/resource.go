package sim

// Resource is a counting semaphore with FIFO admission, used to model
// exclusive or limited hardware units (an SM issue port, a DMA engine).
type Resource struct {
	e     *Engine
	cap   int
	inUse int
	queue []*Proc
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{e: e, cap: capacity}
}

// Acquire blocks p until a unit is available, honouring FIFO order. p
// must belong to the same engine as the resource (affinity guard).
func (r *Resource) Acquire(p *Proc) {
	r.e.mustOwn(p, "Resource.Acquire")
	if r.inUse < r.cap && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.park()
	// Ownership was transferred by Release before the wakeup.
}

// TryAcquire acquires a unit without blocking; reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.queue) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If a process is queued, ownership passes
// directly to the head of the queue.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if len(r.queue) > 0 {
		w := r.queue[0]
		r.queue[0] = nil // do not retain the departing proc
		r.queue = r.queue[1:]
		// inUse stays: the unit transfers to w.
		r.e.At(r.e.now, w.resumeF)
		return
	}
	r.inUse--
}

// InUse reports the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Use acquires the resource, holds it for d, then releases it.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}
