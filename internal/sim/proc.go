package sim

import "fmt"

// Wake tokens travel the per-goroutine handoff channels.
const (
	wakeResume   = iota // you own the simulation: start, or return from park
	wakeKill            // unwind via the kill sentinel (Shutdown)
	wakeLoopDone        // (mainWake) the event loop finished; Run returns
	wakeContinue        // (mainWake) a process died; Run's goroutine resumes the loop
	wakePanic           // (mainWake) an event panicked; Run's goroutine re-panics
)

// Unwind codes communicate, through Engine.unwind, why the innermost loop
// frame must return. They are set inside a dispatched event and checked by
// the loop after each dispatch.
const (
	unwindNone    = iota
	unwindResumed // the carrier process was woken: return from park
	unwindDone    // a process finished the loop; the Run caller returns
)

// Proc is a simulation process: a goroutine that runs model code and blocks
// on virtual time. A Proc may only execute while the engine has handed
// control to it; it returns control by sleeping, waiting, or finishing.
//
// Control transfer follows the carrier discipline (see Engine.loop): a
// parked process's own goroutine keeps running the event loop, so waking
// the process whose wakeup is the next event — the overwhelmingly common
// case in polling-heavy models — is a flag store, not a goroutine switch.
type Proc struct {
	e    *Engine
	name string
	wake chan uint8
	done bool
	kill bool

	// resumeF is the resume method value, built once at spawn so the hot
	// wake paths (Sleep, Signal.Broadcast, Resource.Release, ...) schedule
	// it without allocating a fresh closure per wakeup.
	resumeF func()
}

// procKilled is the sentinel panic value Shutdown injects into parked
// processes; the spawn wrapper recovers it and exits cleanly.
var procKilled = new(int)

// Spawn starts fn as a new process at the current virtual time. fn begins
// executing when the engine reaches the start event, in scheduling order
// relative to other events at the same instant.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt starts fn as a new process at absolute virtual time t.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	e.mustAlive("Spawn")
	p := &Proc{e: e, name: name, wake: make(chan uint8)}
	p.resumeF = p.resume
	e.procs++
	e.live[p] = struct{}{}
	//putget:allow engineaffinity -- this IS sim.Proc: the one goroutine birth in the sim domain; the engine serializes it via the carrier handoff
	go func() {
		defer func() {
			if r := recover(); r != nil && r != procKilled {
				panic(r)
			}
			p.done = true
			e.procs--
			delete(e.live, p)
			if p.kill {
				e.mainWake <- wakeLoopDone // Shutdown's per-kill handshake
				return
			}
			// Natural exit while carrying the loop: hand it back to the
			// Run caller's goroutine, which resumes dispatching.
			e.carrier = nil
			e.mainWake <- wakeContinue
		}()
		if <-p.wake == wakeKill {
			panic(procKilled)
		}
		fn(p)
	}()
	e.At(t, p.resumeF)
	return p
}

// Name returns the process name (used in traces and panics).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// resume transfers the simulation to p. It runs in dispatch context, on
// whichever goroutine currently carries the event loop. Fast path: when p
// itself is the carrier (it parked and its own wakeup is the event being
// dispatched), resumption is a flag store — no goroutine switch at all.
// Otherwise the carrier wakes p's goroutine and blocks until the
// simulation is handed back to it.
//
//putget:hot
func (p *Proc) resume() {
	e := p.e
	c := e.carrier
	if c == p {
		e.unwind = unwindResumed
		return
	}
	e.carrier = p
	p.wake <- wakeResume
	if c == nil {
		// We are the Run caller: blocked until the loop finishes (a
		// carrier drained it — Run returns), a process dies carrying it
		// (we take the loop back over), or an event panics on a carrier
		// (we re-raise it so Run's caller sees the panic, exactly as when
		// the event runs on this goroutine directly).
		switch <-e.mainWake {
		case wakeLoopDone:
			e.unwind = unwindDone
		case wakePanic:
			v := e.panicVal
			e.panicVal = nil
			panic(v)
		}
		return
	}
	// We are a parked process: blocked until our own wakeup dispatches,
	// or Shutdown kills us.
	if <-c.wake == wakeKill {
		panic(procKilled)
	}
	e.unwind = unwindResumed
}

// park returns control to the engine by running the event loop on this
// goroutine until something resumes the process. If the loop finishes
// first, completion is handed to the Run caller and the process stays
// parked (a later Run may still wake it; Shutdown kills it). If a
// dispatched event panics, the value is forwarded to the Run caller —
// an event's panic must surface out of Run/RunUntil no matter whose
// goroutine dispatched it — and the process likewise stays parked.
//
//putget:hot
func (p *Proc) park() {
	e := p.e
	if p.carryLoop() == unwindNone {
		e.carrier = nil
		e.mainWake <- wakeLoopDone
		if <-p.wake == wakeKill {
			panic(procKilled)
		}
	}
}

// carryLoop runs the event loop for park, converting a panic raised by a
// dispatched event into a wakePanic handoff to the Run caller. The kill
// sentinel is re-raised untouched: it means this process was terminated
// while blocked inside a nested handoff, and must keep unwinding.
func (p *Proc) carryLoop() (u int) {
	e := p.e
	defer func() {
		if r := recover(); r != nil {
			if r == procKilled {
				panic(procKilled)
			}
			e.panicVal = r
			e.carrier = nil
			e.mainWake <- wakePanic
			if <-p.wake == wakeKill {
				panic(procKilled)
			}
			u = unwindResumed
		}
	}()
	return e.loop()
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time but still yield, letting simultaneous events run.
//
//putget:hot
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.e.After(d, p.resumeF)
	p.park()
}

// SleepUntil suspends the process until absolute time t. If t is in the
// past it panics (causality violation).
//
//putget:hot
func (p *Proc) SleepUntil(t Time) {
	if t < p.e.now {
		panic(fmt.Sprintf("sim: %s sleeping until %v which is before now %v", p.name, t, p.e.now))
	}
	p.e.At(t, p.resumeF)
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
