package sim

import "fmt"

// Proc is a simulation process: a goroutine that runs model code and blocks
// on virtual time. A Proc may only execute while the engine has handed
// control to it; it returns control by sleeping, waiting, or finishing.
type Proc struct {
	e    *Engine
	name string
	wake chan struct{}
	done bool
	kill bool
}

// procKilled is the sentinel panic value Shutdown injects into parked
// processes; the spawn wrapper recovers it and exits cleanly.
var procKilled = new(int)

// Spawn starts fn as a new process at the current virtual time. fn begins
// executing when the engine reaches the start event, in scheduling order
// relative to other events at the same instant.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt starts fn as a new process at absolute virtual time t.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	e.mustAlive("Spawn")
	p := &Proc{e: e, name: name, wake: make(chan struct{})}
	e.procs++
	e.live[p] = struct{}{}
	//putget:allow engineaffinity -- this IS sim.Proc: the one goroutine birth in the sim domain; the engine serializes it via the wake/yield handshake
	go func() {
		defer func() {
			if r := recover(); r != nil && r != procKilled {
				panic(r)
			}
			p.done = true
			p.e.procs--
			delete(p.e.live, p)
			p.e.yield <- struct{}{}
		}()
		<-p.wake // wait for the start event
		if p.kill {
			panic(procKilled)
		}
		fn(p)
	}()
	e.At(t, func() { p.resume() })
	return p
}

// Name returns the process name (used in traces and panics).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// resume transfers control from the engine loop to the process and blocks
// the engine until the process parks again. Must be called from engine
// (event-callback) context only.
func (p *Proc) resume() {
	p.wake <- struct{}{}
	<-p.e.yield
}

// park returns control to the engine and blocks until resumed. If the
// engine is shutting down, the process unwinds via the kill sentinel.
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.wake
	if p.kill {
		panic(procKilled)
	}
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time but still yield, letting simultaneous events run.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.e.After(d, func() { p.resume() })
	p.park()
}

// SleepUntil suspends the process until absolute time t. If t is in the
// past it panics (causality violation).
func (p *Proc) SleepUntil(t Time) {
	if t < p.e.now {
		panic(fmt.Sprintf("sim: %s sleeping until %v which is before now %v", p.name, t, p.e.now))
	}
	p.e.At(t, func() { p.resume() })
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
