package sim

// timerSlot is the engine-side record of one cancellable event: its
// current heap position (-1 once fired or cancelled) and a generation
// counter. Slots are recycled through a free list, so arming a timer in
// steady state allocates nothing; the generation makes a handle to a
// recycled slot inert instead of cancelling someone else's timer.
type timerSlot struct {
	pos int32
	gen uint32
}

// Timer is a handle to a cancellable scheduled event, returned by
// AtTimer/AfterTimer. The zero Timer is valid and inert: Cancel and
// Active on it return false, so callers can hold one unconditionally and
// cancel without a nil guard. A Timer is engine state — use it only under
// the engine's handoff discipline, like every other scheduling call.
//
// Timers exist because fire-and-forget deadlines leak: an event armed
// "just in case" (a wait deadline, a retry watchdog) whose condition
// resolves early would otherwise sit in the queue until its instant
// passes, retaining its closure (and anything it captures, typically a
// *Proc or a request record) and inflating Pending and the heap. Cancel
// removes the event from the middle of the queue in O(log n); a
// cancelled event is never executed and never counts toward Executed.
type Timer struct {
	e   *Engine
	idx int32
	gen uint32
}

// AtTimer schedules fn at absolute time t like At and returns a handle
// that can cancel it. Scheduling in the past panics, as with At.
//
//putget:hot
func (e *Engine) AtTimer(t Time, fn func()) Timer {
	idx := e.allocTimerSlot()
	gen := e.timers[idx].gen
	e.schedule(t, fn, idx)
	return Timer{e: e, idx: idx, gen: gen}
}

// AfterTimer schedules fn d after the current time and returns a
// cancellation handle.
//
//putget:hot
func (e *Engine) AfterTimer(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.AtTimer(e.now.Add(d), fn)
}

// Cancel removes the timer's event from the queue. It reports whether it
// cancelled anything: false when the timer already fired, was already
// cancelled, is the zero Timer, or its engine was shut down. Cancelling
// releases the event's closure immediately.
//
//putget:hot
func (t Timer) Cancel() bool {
	e := t.e
	if e == nil || e.dead {
		return false
	}
	s := &e.timers[t.idx]
	if s.gen != t.gen || s.pos < 0 {
		return false
	}
	e.touch("Timer.Cancel")
	e.removeEvent(int(s.pos))
	e.freeTimerSlot(t.idx)
	e.untouch()
	return true
}

// Active reports whether the timer's event is still queued.
func (t Timer) Active() bool {
	if t.e == nil || t.e.dead {
		return false
	}
	s := &t.e.timers[t.idx]
	return s.gen == t.gen && s.pos >= 0
}

// allocTimerSlot returns a free slot index, recycling cancelled/fired
// slots before growing the table.
//
//putget:hot
func (e *Engine) allocTimerSlot() int32 {
	if k := len(e.freeT); k > 0 {
		idx := e.freeT[k-1]
		e.freeT = e.freeT[:k-1]
		return idx
	}
	e.timers = append(e.timers, timerSlot{})
	return int32(len(e.timers) - 1)
}

// freeTimerSlot retires a slot when its event fires or is cancelled: the
// generation bump invalidates outstanding handles before the slot is
// recycled.
//
//putget:hot
func (e *Engine) freeTimerSlot(idx int32) {
	s := &e.timers[idx]
	s.pos = -1
	s.gen++
	e.freeT = append(e.freeT, idx)
}
