package sim

import (
	"testing"
	"testing/quick"
)

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.Spawn("b", func(p *Proc) {
		p.Sleep(100)
		s.Broadcast()
	})
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestSignalPulseWakesOneFIFO(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			order = append(order, i)
		})
	}
	e.Spawn("pulser", func(p *Proc) {
		p.Sleep(10)
		for i := 0; i < 3; i++ {
			if !s.Pulse() {
				t.Error("Pulse found no waiter")
			}
			p.Sleep(10)
		}
		if s.Pulse() {
			t.Error("Pulse on empty signal returned true")
		}
	})
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

func TestCompletion(t *testing.T) {
	e := NewEngine()
	c := NewCompletion(e)
	var observed Time
	e.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		observed = p.Now()
	})
	e.Spawn("completer", func(p *Proc) {
		p.Sleep(777)
		c.Complete()
	})
	e.Run()
	if !c.Done() || c.At() != 777 || observed != 777 {
		t.Fatalf("completion at %v observed %v, want 777", c.At(), observed)
	}
	// Waiting after completion returns immediately.
	late := false
	e.Spawn("late", func(p *Proc) {
		c.Wait(p)
		late = true
	})
	e.Run()
	if !late {
		t.Fatal("late waiter did not pass completed Completion")
	}
}

func TestCompletionDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	c := NewCompletion(e)
	e.At(0, func() {
		c.Complete()
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double Complete")
			}
		}()
		c.Complete()
	})
	e.Run()
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var holds [][2]Time
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Sleep(100)
			r.Release()
			holds = append(holds, [2]Time{start, p.Now()})
		})
	}
	e.Run()
	if len(holds) != 4 {
		t.Fatalf("holds = %d, want 4", len(holds))
	}
	for i := 1; i < len(holds); i++ {
		if holds[i][0] < holds[i-1][1] {
			t.Fatalf("overlapping holds: %v", holds)
		}
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", r.InUse())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 100)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	// Two at a time: finishes at 100,100,200,200.
	want := []Time{100, 100, 200, 200}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	e.At(0, func() {
		if !r.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if r.TryAcquire() {
			t.Error("second TryAcquire succeeded on full resource")
		}
		r.Release()
		if !r.TryAcquire() {
			t.Error("TryAcquire after release failed")
		}
		r.Release()
	})
	e.Run()
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic releasing idle resource")
		}
	}()
	r.Release()
}

func TestServerSerializes(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1e9) // 1 GB/s: 1000 bytes = 1us
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("xfer", func(p *Proc) {
			s.Transfer(p, 1000)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{Time(Microsecond), Time(2 * Microsecond), Time(3 * Microsecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if s.BusyTotal() != 3*Microsecond {
		t.Fatalf("BusyTotal = %v, want 3us", s.BusyTotal())
	}
}

func TestServerReservePosted(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1e9)
	e.At(0, func() {
		if got := s.Reserve(500); got != Time(500*Nanosecond) {
			t.Errorf("first Reserve = %v, want 500ns", got)
		}
		if got := s.Reserve(500); got != Time(Microsecond) {
			t.Errorf("second Reserve = %v, want 1us", got)
		}
	})
	e.At(Time(5*Microsecond), func() {
		// Server went idle; reservation starts now.
		if got := s.Reserve(1000); got != Time(6*Microsecond) {
			t.Errorf("idle Reserve = %v, want 6us", got)
		}
	})
	e.Run()
}

// Property: a FIFO server's total busy time equals the sum of transfer
// durations, and completion times are nondecreasing in request order.
func TestServerFIFOProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := NewEngine()
		s := NewServer(e, 1e6)
		var finishes []Time
		var total Duration
		for _, sz := range sizes {
			n := int(sz) + 1
			total += BytesAt(n, 1e6)
			e.At(0, func() { finishes = append(finishes, s.Reserve(n)) })
		}
		e.Run()
		for i := 1; i < len(finishes); i++ {
			if finishes[i] < finishes[i-1] {
				return false
			}
		}
		return s.BusyTotal() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChanFIFO(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, c.Recv(p))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			c.Send(i)
		}
	})
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("recv order %v, want FIFO", got)
		}
	}
}

func TestChanTryRecv(t *testing.T) {
	e := NewEngine()
	c := NewChan[string](e)
	e.At(0, func() {
		if _, ok := c.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		c.Send("x")
		if v, ok := c.TryRecv(); !ok || v != "x" {
			t.Errorf("TryRecv = %q,%v want x,true", v, ok)
		}
		if c.Len() != 0 {
			t.Errorf("Len = %d, want 0", c.Len())
		}
	})
	e.Run()
}

func TestChanBuffersWhenNoReceiver(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	e.At(0, func() {
		for i := 0; i < 100; i++ {
			c.Send(i)
		}
	})
	var sum int
	e.SpawnAt(10, "recv", func(p *Proc) {
		for i := 0; i < 100; i++ {
			sum += c.Recv(p)
		}
	})
	e.Run()
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestWaitUntilSignalBeforeDeadline(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var ok bool
	var at Time
	e.Spawn("w", func(p *Proc) {
		ok = s.WaitUntil(p, 100)
		at = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(50)
		s.Broadcast()
	})
	e.Run()
	if !ok || at != 50 {
		t.Fatalf("WaitUntil = %v at %v, want true at 50", ok, at)
	}
	// The satisfied wait must leave no dead deadline event behind.
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after signalled WaitUntil, want 0", e.Pending())
	}
}

func TestWaitUntilTimeout(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var ok bool
	var at Time
	e.Spawn("w", func(p *Proc) {
		ok = s.WaitUntil(p, 100)
		at = p.Now()
	})
	e.Run()
	if ok || at != 100 {
		t.Fatalf("WaitUntil = %v at %v, want false at 100", ok, at)
	}
	if s.Waiting() != 0 {
		t.Fatalf("Waiting = %d after timeout, want 0", s.Waiting())
	}
}

func TestWaitUntilDeadlineNotInFuture(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	results := make(map[Time]bool)
	e.Spawn("w", func(p *Proc) {
		p.Sleep(50)
		results[p.Now()] = s.WaitUntil(p, 50) // deadline == now
		results[100] = s.WaitUntil(p, 20)     // deadline in the past
	})
	e.Run()
	if results[50] || results[100] {
		t.Fatalf("results = %v, want immediate false for non-future deadlines", results)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0: no timer may be armed", e.Pending())
	}
}

func TestWaitUntilSameInstantBroadcastFirstWins(t *testing.T) {
	// The broadcast is armed before the waiter's deadline timer, so at the
	// shared instant the broadcast dispatches first: the wait is satisfied.
	e := NewEngine()
	s := NewSignal(e)
	var ok bool
	e.At(100, func() { s.Broadcast() })
	e.Spawn("w", func(p *Proc) {
		ok = s.WaitUntil(p, 100)
	})
	e.Run()
	if !ok {
		t.Fatal("broadcast armed before the deadline lost the same-instant race")
	}
}

func TestWaitUntilSameInstantDeadlineFirstWins(t *testing.T) {
	// Here the deadline timer is armed before the broadcast event, so at
	// the shared instant the wait times out first.
	e := NewEngine()
	s := NewSignal(e)
	var ok bool
	e.Spawn("w", func(p *Proc) {
		ok = s.WaitUntil(p, 100)
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(100)
		s.Broadcast()
	})
	e.Run()
	if ok {
		t.Fatal("deadline armed before the broadcast lost the same-instant race")
	}
}

func TestWaitUntilRewaitAfterTimeout(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var verdicts []bool
	e.Spawn("w", func(p *Proc) {
		verdicts = append(verdicts, s.WaitUntil(p, 100)) // times out
		verdicts = append(verdicts, s.WaitUntil(p, 300)) // signalled at 200
		verdicts = append(verdicts, s.WaitUntil(p, 400)) // times out again
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(200)
		s.Broadcast()
	})
	e.Run()
	want := []bool{false, true, false}
	if len(verdicts) != len(want) {
		t.Fatalf("verdicts = %v, want %v", verdicts, want)
	}
	for i := range want {
		if verdicts[i] != want[i] {
			t.Fatalf("verdicts = %v, want %v", verdicts, want)
		}
	}
	if e.Now() != 400 || e.Pending() != 0 {
		t.Fatalf("Now = %v Pending = %d, want 400, 0", e.Now(), e.Pending())
	}
}

func TestPulseCancelsTimedWaiterDeadline(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var ok bool
	e.Spawn("w", func(p *Proc) {
		ok = s.WaitUntil(p, 1000)
	})
	e.Spawn("pulser", func(p *Proc) {
		p.Sleep(10)
		s.Pulse()
	})
	e.Run()
	if !ok {
		t.Fatal("pulsed timed waiter reported timeout")
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v: the dead deadline event still ran the clock forward", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestChanRingReusesCapacity(t *testing.T) {
	// Steady-state churn through a mailbox must not grow its backing ring:
	// the former front-slicing implementation retained every consumed slot.
	e := NewEngine()
	c := NewChan[int](e)
	e.At(0, func() {
		for i := 0; i < 4; i++ {
			c.Send(i)
		}
	})
	e.Spawn("churn", func(p *Proc) {
		for i := 0; i < 10000; i++ {
			v := c.Recv(p)
			c.Send(v + 4)
		}
	})
	e.Run()
	if got := len(c.buf); got != 8 {
		t.Fatalf("ring grew to %d slots under steady occupancy 4, want 8", got)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestChanRingWrapKeepsFIFO(t *testing.T) {
	// Force the head to wrap the ring repeatedly and across a growth.
	e := NewEngine()
	c := NewChan[int](e)
	next := 0
	var got []int
	e.At(0, func() {
		for i := 0; i < 6; i++ {
			c.Send(next)
			next++
		}
	})
	e.Spawn("recv", func(p *Proc) {
		for len(got) < 60 {
			got = append(got, c.Recv(p))
			// Interleave sends so head/tail chase each other around the
			// ring, periodically overflowing it to trigger an unwrap.
			for i := 0; i < 2 && next < 60; i++ {
				c.Send(next)
				next++
			}
		}
	})
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO broken across wrap/growth: got[%d] = %d", i, got[i])
		}
	}
}
