package sim_test

// The engine-level determinism property (determinism_test.go) extends to
// the full fault-injected testbeds: with a fixed seed, a lossy run's every
// virtual timestamp and counter is a pure function of the inputs. This
// lives in an external test package because it exercises the whole stack
// through bench.

import (
	"reflect"
	"testing"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/sim"
)

func lossyParams(seed uint64, rate float64) cluster.Params {
	p := cluster.Default()
	p.FaultInject = true
	p.FaultSeed = seed
	p.FaultDropRate = rate
	p.FaultCorruptRate = rate / 4
	return p
}

// TestFaultDeterministicVirtualTimes sweeps loss rates from 0.1% to 20%
// and requires that repeated runs agree on every virtual-time figure —
// half-RTT, put time, poll time — and every reliability counter, for both
// fabrics. Payload integrity is asserted inside the measurements
// themselves (they panic on corrupted bytes).
func TestFaultDeterministicVirtualTimes(t *testing.T) {
	for _, rate := range []float64{0.001, 0.05, 0.2} {
		p := lossyParams(11, rate)
		e1 := bench.ExtollPingPong(p, bench.ExtHostControlled, 256, 10, 1)
		e2 := bench.ExtollPingPong(p, bench.ExtHostControlled, 256, 10, 1)
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("rate %v: EXTOLL runs diverged:\n%+v\n%+v", rate, e1, e2)
		}
		i1 := bench.IBPingPong(p, bench.IBHostControlled, 256, 10, 1)
		i2 := bench.IBPingPong(p, bench.IBHostControlled, 256, 10, 1)
		if !reflect.DeepEqual(i1, i2) {
			t.Fatalf("rate %v: IB runs diverged:\n%+v\n%+v", rate, i1, i2)
		}
		if e1.HalfRTT <= 0 || i1.HalfRTT <= 0 {
			t.Fatalf("rate %v: degenerate latencies %v / %v", rate, e1.HalfRTT, i1.HalfRTT)
		}
	}
}

// TestFaultDeterministicBlackout repeats a total-loss window run and
// requires identical recovery behaviour, timestamp for timestamp.
func TestFaultDeterministicBlackout(t *testing.T) {
	p := lossyParams(11, 0.002)
	p.FaultBlackoutStart = sim.Time(0).Add(30 * sim.Microsecond)
	p.FaultBlackoutEnd = p.FaultBlackoutStart.Add(60 * sim.Microsecond)
	r1 := bench.BlackoutRecovery(cluster.Default(), 11)
	r2 := bench.BlackoutRecovery(cluster.Default(), 11)
	if r1 != r2 {
		t.Fatalf("blackout recovery reports diverged:\n%s\n%s", r1, r2)
	}
}
