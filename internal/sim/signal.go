package sim

// Signal is a broadcast condition variable for processes. Wait parks the
// calling process; Broadcast wakes every waiter at the current instant (in
// wait order). There is no spurious wakeup: a waiter resumes only after a
// Broadcast/Pulse that happened after its Wait began.
type Signal struct {
	e       *Engine
	waiters []waiter
}

// waiter is one parked process plus the deadline timer a WaitUntil armed
// (the zero Timer for plain Waits). Waking a waiter cancels its timer, so
// a timed wait that the signal satisfies leaves nothing in the event
// queue — previously the dead deadline event lingered until its instant,
// retaining the *Proc and inflating Pending.
type waiter struct {
	p     *Proc
	timer Timer
}

// NewSignal creates a signal bound to engine e.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// Wait parks p until the next Broadcast or a Pulse that selects it. p
// must belong to the same engine as the signal (affinity guard).
func (s *Signal) Wait(p *Proc) {
	s.e.mustOwn(p, "Signal.Wait")
	s.waiters = append(s.waiters, waiter{p: p})
	p.park()
}

// Broadcast schedules every current waiter to resume at the present time.
// Waiters added after Broadcast returns are not woken. Safe to call from
// either process or event context.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for i := range ws {
		ws[i].timer.Cancel()
		s.e.At(s.e.now, ws[i].p.resumeF)
	}
}

// WaitUntil parks p until the next Broadcast/Pulse or until deadline,
// whichever comes first, and reports whether a signal (not the deadline)
// woke the waiter. A deadline at or before the current time returns false
// without parking. When the signal wins, the deadline timer is cancelled
// on the spot; when both land on the same instant, whichever event was
// scheduled first decides (a Broadcast armed before this WaitUntil beats
// the deadline, one armed after loses to it).
func (s *Signal) WaitUntil(p *Proc, deadline Time) bool {
	s.e.mustOwn(p, "Signal.WaitUntil")
	if deadline <= s.e.now {
		return false
	}
	timedOut := false
	tm := s.e.AtTimer(deadline, func() {
		// Still queued (any wake would have cancelled this timer): leave
		// the wait queue and resume with the timeout verdict.
		for i := range s.waiters {
			if s.waiters[i].p == p {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				timedOut = true
				p.resume()
				return
			}
		}
	})
	s.waiters = append(s.waiters, waiter{p: p, timer: tm})
	p.park()
	return !timedOut
}

// Pulse wakes exactly one waiter (FIFO order) if any is parked. It reports
// whether a waiter was woken.
func (s *Signal) Pulse() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	s.waiters[0] = waiter{}
	s.waiters = s.waiters[1:]
	w.timer.Cancel()
	s.e.At(s.e.now, w.p.resumeF)
	return true
}

// Waiting reports the number of parked processes.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Completion is a one-shot event carrying a completion time. Processes can
// wait for it; completing it more than once panics.
type Completion struct {
	e      *Engine
	done   bool
	at     Time
	signal *Signal
}

// NewCompletion creates an unresolved completion.
func NewCompletion(e *Engine) *Completion {
	return &Completion{e: e, signal: NewSignal(e)}
}

// Complete resolves the completion at the current time and wakes waiters.
func (c *Completion) Complete() {
	if c.done {
		panic("sim: Completion completed twice")
	}
	c.done = true
	c.at = c.e.now
	c.signal.Broadcast()
}

// Done reports whether the completion has resolved.
func (c *Completion) Done() bool { return c.done }

// At returns the resolution time; valid only when Done.
func (c *Completion) At() Time { return c.at }

// Wait parks p until the completion resolves. Returns immediately if it
// already has.
func (c *Completion) Wait(p *Proc) {
	c.e.mustOwn(p, "Completion.Wait")
	if c.done {
		return
	}
	c.signal.Wait(p)
}
