package sim

// Signal is a broadcast condition variable for processes. Wait parks the
// calling process; Broadcast wakes every waiter at the current instant (in
// wait order). There is no spurious wakeup: a waiter resumes only after a
// Broadcast/Pulse that happened after its Wait began.
type Signal struct {
	e       *Engine
	waiters []*Proc
}

// NewSignal creates a signal bound to engine e.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// Wait parks p until the next Broadcast or a Pulse that selects it. p
// must belong to the same engine as the signal (affinity guard).
func (s *Signal) Wait(p *Proc) {
	s.e.mustOwn(p, "Signal.Wait")
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast schedules every current waiter to resume at the present time.
// Waiters added after Broadcast returns are not woken. Safe to call from
// either process or event context.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w := w
		s.e.At(s.e.now, func() { w.resume() })
	}
}

// WaitUntil parks p until the next Broadcast/Pulse or until deadline,
// whichever comes first, and reports whether a signal (not the deadline)
// woke the waiter. A deadline at or before the current time returns false
// without parking.
func (s *Signal) WaitUntil(p *Proc, deadline Time) bool {
	s.e.mustOwn(p, "Signal.WaitUntil")
	if deadline <= s.e.now {
		return false
	}
	s.waiters = append(s.waiters, p)
	settled := false
	timedOut := false
	s.e.At(deadline, func() {
		if settled {
			return
		}
		for i, w := range s.waiters {
			if w == p {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				timedOut = true
				p.resume()
				return
			}
		}
	})
	p.park()
	settled = true
	return !timedOut
}

// Pulse wakes exactly one waiter (FIFO order) if any is parked. It reports
// whether a waiter was woken.
func (s *Signal) Pulse() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.e.At(s.e.now, func() { w.resume() })
	return true
}

// Waiting reports the number of parked processes.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Completion is a one-shot event carrying a completion time. Processes can
// wait for it; completing it more than once panics.
type Completion struct {
	e      *Engine
	done   bool
	at     Time
	signal *Signal
}

// NewCompletion creates an unresolved completion.
func NewCompletion(e *Engine) *Completion {
	return &Completion{e: e, signal: NewSignal(e)}
}

// Complete resolves the completion at the current time and wakes waiters.
func (c *Completion) Complete() {
	if c.done {
		panic("sim: Completion completed twice")
	}
	c.done = true
	c.at = c.e.now
	c.signal.Broadcast()
}

// Done reports whether the completion has resolved.
func (c *Completion) Done() bool { return c.done }

// At returns the resolution time; valid only when Done.
func (c *Completion) At() Time { return c.at }

// Wait parks p until the completion resolves. Returns immediately if it
// already has.
func (c *Completion) Wait(p *Proc) {
	c.e.mustOwn(p, "Completion.Wait")
	if c.done {
		return
	}
	c.signal.Wait(p)
}
