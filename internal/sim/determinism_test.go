package sim

import (
	"fmt"
	"strings"
	"testing"
)

// buildWorkload runs a randomized-looking (but seeded) mix of processes,
// resources, servers, channels and signals, logging every observable
// step. Determinism requires bit-identical logs across runs.
func buildWorkload(seed uint64) string {
	var log strings.Builder
	e := NewEngine()
	res := NewResource(e, 2)
	srv := NewServer(e, 1e9)
	ch := NewChan[int](e)
	sig := NewSignal(e)

	rng := seed
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}

	for i := 0; i < 20; i++ {
		i := i
		delay := Duration(next()%1000) * Nanosecond
		e.SpawnAt(Time(next()%5000), fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(delay)
			res.Acquire(p)
			srv.Transfer(p, int(next()%4096)+1)
			fmt.Fprintf(&log, "%d held at %v\n", i, p.Now())
			res.Release()
			ch.Send(i)
			if i%5 == 0 {
				sig.Broadcast()
			}
		})
	}
	e.Spawn("drain", func(p *Proc) {
		for i := 0; i < 20; i++ {
			v := ch.Recv(p)
			fmt.Fprintf(&log, "drained %d at %v\n", v, p.Now())
		}
	})
	e.Run()
	fmt.Fprintf(&log, "end %v\n", e.Now())
	return log.String()
}

func TestWorkloadDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		first := buildWorkload(seed)
		for run := 0; run < 3; run++ {
			if again := buildWorkload(seed); again != first {
				t.Fatalf("seed %d: nondeterministic run:\n--- first ---\n%s--- again ---\n%s",
					seed, first, again)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	// Sanity: the workload actually depends on its seed (otherwise the
	// determinism test proves nothing).
	if buildWorkload(1) == buildWorkload(2) {
		t.Fatal("workload ignores its seed")
	}
}
