package sim

import (
	"fmt"
	"strings"
	"testing"
)

// recoverInProc runs body inside a process on engine e and returns the
// panic value the body raised (nil if none). The recover must happen
// inside the process body itself: proc panics unwind on the proc's own
// goroutine, outside the test goroutine's reach.
func recoverInProc(e *Engine, body func(p *Proc)) (got interface{}) {
	e.Spawn("violator", func(p *Proc) {
		defer func() { got = recover() }()
		body(p)
	})
	e.Run()
	return got
}

func wantAffinityPanic(t *testing.T, got interface{}, what string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no panic for cross-engine use", what)
	}
	msg := fmt.Sprint(got)
	if !strings.Contains(msg, "affinity violation") || !strings.Contains(msg, what) {
		t.Fatalf("%s: panic = %q, want affinity diagnostic", what, msg)
	}
}

func TestAffinityChanRecvForeignProc(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	ch := NewChan[int](b)
	ch.Send(1) // non-empty: the guard must fire before the dequeue
	got := recoverInProc(a, func(p *Proc) { ch.Recv(p) })
	wantAffinityPanic(t, got, "Chan.Recv")
}

func TestAffinitySignalWaitForeignProc(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	s := NewSignal(b)
	got := recoverInProc(a, func(p *Proc) { s.Wait(p) })
	wantAffinityPanic(t, got, "Signal.Wait")

	got = recoverInProc(a, func(p *Proc) { s.WaitUntil(p, Time(0).Add(Microsecond)) })
	wantAffinityPanic(t, got, "Signal.WaitUntil")
}

func TestAffinityResourceAcquireForeignProc(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	r := NewResource(b, 1)
	got := recoverInProc(a, func(p *Proc) { r.Acquire(p) })
	wantAffinityPanic(t, got, "Resource.Acquire")
}

func TestAffinityServerTransferForeignProc(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	srv := NewServer(b, 1e9)
	got := recoverInProc(a, func(p *Proc) { srv.Transfer(p, 64) })
	wantAffinityPanic(t, got, "Server.Transfer")
}

func TestAffinityCompletionWaitForeignProc(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	c := NewCompletion(b)
	got := recoverInProc(a, func(p *Proc) { c.Wait(p) })
	wantAffinityPanic(t, got, "Completion.Wait")
}

func TestAffinitySameEngineStillWorks(t *testing.T) {
	e := NewEngine()
	ch := NewChan[int](e)
	r := NewResource(e, 1)
	var got int
	e.Spawn("ok", func(p *Proc) {
		r.Acquire(p)
		got = ch.Recv(p)
		r.Release()
	})
	e.At(0, func() { ch.Send(42) })
	e.Run()
	if got != 42 {
		t.Fatalf("same-engine path broken: got %d", got)
	}
}

func TestUseAfterShutdownPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("idle", func(p *Proc) { NewSignal(e).Wait(p) }) // parks forever
	e.Run()
	e.Shutdown()

	for _, tc := range []struct {
		what string
		call func()
	}{
		{"At", func() { e.At(e.Now(), func() {}) }},
		{"Spawn", func() { e.Spawn("late", func(p *Proc) {}) }},
		{"Run", func() { e.Run() }},
		{"RunUntil", func() { e.RunUntil(e.Now().Add(Microsecond)) }},
	} {
		func() {
			defer func() {
				got := recover()
				if got == nil {
					t.Fatalf("%s after Shutdown: no panic", tc.what)
				}
				if msg := fmt.Sprint(got); !strings.Contains(msg, "after Shutdown") {
					t.Fatalf("%s after Shutdown: panic = %q", tc.what, msg)
				}
			}()
			tc.call()
		}()
	}
}

func TestEngineIDsAreUnique(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	if a.ID() == b.ID() || a.ID() == 0 || b.ID() == 0 {
		t.Fatalf("engine ids %d, %d", a.ID(), b.ID())
	}
}
