package sim

// Server models a work-conserving FIFO serialization point with a fixed
// service rate — a PCIe link direction, a NIC datapath, a memory port.
// Transfers queue behind each other; a transfer of n bytes occupies the
// server for n/rate seconds.
//
// The model intentionally serializes whole transfers rather than
// interleaving packets: at the message sizes the paper sweeps this matches
// a store-and-forward pipe closely while staying O(1) per transfer.
type Server struct {
	e         *Engine
	rate      float64 // bytes per second
	busyUntil Time
	busyTotal Duration // accumulated busy time, for utilization reporting
}

// NewServer creates a server with the given service rate in bytes/second.
func NewServer(e *Engine, bytesPerSecond float64) *Server {
	if bytesPerSecond <= 0 {
		panic("sim: server rate must be positive")
	}
	return &Server{e: e, rate: bytesPerSecond}
}

// Rate returns the configured service rate in bytes/second.
func (s *Server) Rate() float64 { return s.rate }

// SetRate changes the service rate; affects transfers reserved afterwards.
func (s *Server) SetRate(bytesPerSecond float64) {
	if bytesPerSecond <= 0 {
		panic("sim: server rate must be positive")
	}
	s.rate = bytesPerSecond
}

// Reserve books n bytes of service starting no earlier than the current
// time and returns the completion time, without blocking. Use it for
// posted (fire-and-forget) traffic where the initiator does not wait.
func (s *Server) Reserve(n int) Time {
	start := s.e.now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	d := BytesAt(n, s.rate)
	s.busyUntil = start.Add(d)
	s.busyTotal += d
	return s.busyUntil
}

// ReserveDuration books d of service time and returns the completion time.
func (s *Server) ReserveDuration(d Duration) Time {
	start := s.e.now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start.Add(d)
	s.busyTotal += d
	return s.busyUntil
}

// Transfer books n bytes of service and blocks p until the transfer
// completes (queueing + serialization). p must belong to the same engine
// as the server (affinity guard).
func (s *Server) Transfer(p *Proc, n int) {
	s.e.mustOwn(p, "Server.Transfer")
	done := s.Reserve(n)
	p.SleepUntil(done)
}

// BusyTotal reports accumulated service time, for utilization metrics.
func (s *Server) BusyTotal() Duration { return s.busyTotal }
