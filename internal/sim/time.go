// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel drives every hardware model in this repository: GPU warps,
// host CPU threads, NIC engines and PCIe links are all sim processes that
// advance a shared virtual clock. Determinism is guaranteed by a strict
// handoff discipline: exactly one goroutine (either the engine or a single
// process) runs at any instant, and simultaneous events fire in the order
// they were scheduled.
package sim

import "fmt"

// Time is a point in virtual time, measured in picoseconds. Picosecond
// resolution lets us express sub-nanosecond hardware clocks (an EXTOLL
// FPGA cycle at 157 MHz is 6369 ps) without rounding drift.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds converts d to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Nanoseconds converts d to floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// String formats d using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// String formats t as a duration since time zero.
func (t Time) String() string { return Duration(t).String() }

// Nanoseconds builds a Duration from a floating-point nanosecond count.
func Nanoseconds(ns float64) Duration { return Duration(ns * float64(Nanosecond)) }

// Microseconds builds a Duration from a floating-point microsecond count.
func Microseconds(us float64) Duration { return Duration(us * float64(Microsecond)) }

// BytesAt returns the time needed to move n bytes at rate bytesPerSecond.
func BytesAt(n int, bytesPerSecond float64) Duration {
	if n <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSecond * float64(Second))
}
