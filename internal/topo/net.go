package topo

import (
	"fmt"

	"putget/internal/sim"
)

// LinkConfig gives every cable in the fabric the same physics as a
// point-to-point wire.Link direction: serialization bandwidth plus
// fixed per-hop latency (propagation + switch crossing).
type LinkConfig struct {
	BytesPerSecond float64
	Latency        sim.Duration
}

// Net is an N-node switched fabric carrying packets of type T. Each
// node owns a Port (satisfying wire.Conduit[T]) that injects into the
// fabric and receives ejected packets. The destination of a packet is
// resolved from a sender-local routing key — extracted by the key
// function (an EXTOLL origin port, an IB source QPN) and bound per node
// with Bind at connection-setup time — mirroring how real fabrics route
// on connection state rather than payload inspection.
type Net[T any] struct {
	e    *sim.Engine
	g    *graph
	name string
	key  func(T) int

	ports []*Port[T]
	inbox []*sim.Chan[T]
	// bind[node] maps a routing key (local to that node) to the
	// destination node index. Lookup-only: never iterated.
	bind []map[int]int

	flows       map[flowKey]*flow
	unreachable uint64
}

type flowKey struct{ src, dst int }

// flow caches one (src, dst) pair's path. Adaptive routing may re-pick
// the path, but only while inFlight is zero, so every packet of a burst
// rides the same cables and per-flow FIFO order is preserved.
type flow struct {
	path     []*channel
	inFlight int
}

// NewNet builds the switch graph for spec over n nodes. The key
// function extracts the sender-local routing key from a packet; pair it
// with Bind to resolve destinations.
func NewNet[T any](e *sim.Engine, spec Spec, n int, cfg LinkConfig, name string, key func(T) int) *Net[T] {
	if name == "" {
		name = "net"
	}
	nt := &Net[T]{
		e:     e,
		g:     buildGraph(e, spec, n, name, cfg.BytesPerSecond, cfg.Latency),
		name:  name,
		key:   key,
		flows: make(map[flowKey]*flow),
	}
	nt.ports = make([]*Port[T], n)
	nt.inbox = make([]*sim.Chan[T], n)
	nt.bind = make([]map[int]int, n)
	for i := 0; i < n; i++ {
		nt.ports[i] = &Port[T]{nt: nt, node: i, name: fmt.Sprintf("%s.n%d", name, i)}
		nt.inbox[i] = sim.NewChan[T](e)
		nt.bind[i] = make(map[int]int)
	}
	return nt
}

// Port returns node i's attachment point.
func (nt *Net[T]) Port(i int) *Port[T] { return nt.ports[i] }

// Bind routes packets injected at node whose key extractor yields key to
// dst. Transports call this when a connection is set up.
func (nt *Net[T]) Bind(node, key, dst int) { nt.bind[node][key] = dst }

// Nodes returns the node count.
func (nt *Net[T]) Nodes() int { return nt.g.n }

// Routers returns the switch count (torus: one per grid point; fat-tree:
// leaves + spines).
func (nt *Net[T]) Routers() int { return nt.g.routers }

// Unreachable counts packets dropped at injection because no live path
// (or no binding) existed for their destination.
func (nt *Net[T]) Unreachable() uint64 { return nt.unreachable }

// RouteMemoStats reports the deterministic route memo: distinct
// {attachment router, destination node} segments resolved, and how many
// path resolutions were served from the memo instead of recomputed.
func (nt *Net[T]) RouteMemoStats() (entries int, hits uint64) {
	return len(nt.g.detSeg), nt.g.detSegHits
}

// Hops returns the minimal live router-to-router hop count between two
// nodes, -1 if disconnected. Exposed for tests and experiments.
func (nt *Net[T]) Hops(src, dst int) int {
	if nt.g.downNode[src] || nt.g.downNode[dst] {
		return -1
	}
	return nt.g.distTo(nt.g.nodeRouter[dst])[nt.g.nodeRouter[src]]
}

// PathNames returns the cable names a fresh (src, dst) flow would take
// right now — deterministic-mode paths are stable; adaptive paths
// reflect current congestion. For tests and route inspection.
func (nt *Net[T]) PathNames(src, dst int) []string {
	p := nt.g.path(src, dst, nt.g.spec.Routing == Adaptive)
	if p == nil {
		return nil
	}
	names := make([]string, len(p))
	for i, ch := range p {
		names[i] = ch.name
	}
	return names
}

// MaxDepth reports the deepest egress queue observed on any single
// cable — the congestion high-water mark.
func (nt *Net[T]) MaxDepth() int {
	max := 0
	for r := range nt.g.adj {
		for _, ch := range nt.g.adj[r] {
			if ch.maxDepth > max {
				max = ch.maxDepth
			}
		}
	}
	for i := range nt.g.inject {
		if nt.g.inject[i].maxDepth > max {
			max = nt.g.inject[i].maxDepth
		}
		if nt.g.eject[i].maxDepth > max {
			max = nt.g.eject[i].maxDepth
		}
	}
	return max
}

// flowFor returns the cached flow, (re)computing its path when allowed:
// always on first use; in Adaptive mode also whenever the flow has no
// packets in flight (congestion may have moved since the last burst).
func (nt *Net[T]) flowFor(src, dst int) *flow {
	k := flowKey{src, dst}
	fl := nt.flows[k]
	if fl == nil {
		fl = &flow{}
		nt.flows[k] = fl
	}
	adaptive := nt.g.spec.Routing == Adaptive
	if fl.path == nil || (adaptive && fl.inFlight == 0) {
		fl.path = nt.g.path(src, dst, adaptive)
	}
	return fl
}

// send injects pkt at node src with the upstream stage ready at `ready`
// (cut-through floor, like wire.Link.SendAfter). The returned time is
// when the packet enters the fabric off the injection cable — a lower
// bound on delivery (the Conduit contract for multi-hop fabrics).
func (nt *Net[T]) send(src int, pkt T, wireBytes int, ready sim.Time) (sim.Time, bool) {
	dst, bound := nt.bind[src][nt.key(pkt)]
	if !bound {
		panic(fmt.Sprintf("topo: %s.n%d sent packet with unbound routing key %d", nt.name, src, nt.key(pkt)))
	}
	fl := nt.flowFor(src, dst)
	if fl.path == nil {
		nt.unreachable++
		if nt.e.Traced() {
			nt.e.Tracev(nt.ports[src].name, "fault", "fault: net unreachable n%d->n%d (%dB)", src, dst, wireBytes)
		}
		return nt.e.Now(), false
	}
	fl.inFlight++
	path := fl.path // the slice the whole packet rides, even if the flow re-picks later
	sent := nt.enter(path[0], wireBytes, ready)
	arrive := sent.Add(path[0].lat)
	nt.hopAt(fl, dst, path, pkt, wireBytes, 1, arrive)
	return arrive, true
}

// hopAt schedules the crossing of path[i:] after the packet exits
// path[i-1] at time `at`. The final exit delivers into the destination
// inbox. Store-and-forward: each cable is reserved when the packet
// reaches it, so cross-traffic contention accrues per hop.
func (nt *Net[T]) hopAt(fl *flow, dst int, path []*channel, pkt T, wireBytes int, i int, at sim.Time) {
	nt.e.At(at, func() {
		nt.exit(path[i-1], wireBytes)
		if i == len(path) {
			fl.inFlight--
			nt.inbox[dst].Send(pkt)
			return
		}
		sent := nt.enter(path[i], wireBytes, at)
		nt.hopAt(fl, dst, path, pkt, wireBytes, i+1, sent.Add(path[i].lat))
	})
}

// enter reserves a cable for wireBytes starting no earlier than ready
// and begins occupancy accounting; returns serialization-complete time.
//
// Unlike wire.Link.SendAfter (whose cut-through floor only postpones the
// one packet's delivery), a future `ready` here holds the cable itself:
// the bytes trickle onto the wire at the upstream stage's pace, so a
// later injection cannot overtake an earlier one whose DMA is still
// feeding. Per-cable delivery order therefore matches injection order,
// which is what gives a fixed-path flow its FIFO guarantee — the
// property shmem's collectives (data put, then flag put on the same
// connection) are built on.
func (nt *Net[T]) enter(ch *channel, wireBytes int, ready sim.Time) sim.Time {
	ch.srv.Reserve(wireBytes) // rate/busy accounting; FIFO timing is freeAt's
	start := nt.e.Now()
	if ch.freeAt > start {
		start = ch.freeAt
	}
	if ready > start {
		start = ready
	}
	sent := start.Add(sim.BytesAt(wireBytes, ch.srv.Rate()))
	ch.freeAt = sent
	ch.inFlight++
	if ch.inFlight > ch.maxDepth {
		ch.maxDepth = ch.inFlight
	}
	ch.inFlightBytes += wireBytes
	if nt.e.Observing() {
		id := nt.e.SpanOpenAt(start, ch.name, "xmit",
			sim.Attr{Key: "bytes", Val: int64(wireBytes)})
		nt.e.SpanCloseAt(id, sent.Add(ch.lat))
		nt.e.Metric(ch.name, "depth", float64(ch.inFlight))
		nt.e.Metric(ch.name, "inflight_bytes", float64(ch.inFlightBytes))
		nt.e.Metric(ch.name, "busy_us", ch.srv.BusyTotal().Microseconds())
	}
	return sent
}

// exit ends a cable's occupancy for one packet.
func (nt *Net[T]) exit(ch *channel, wireBytes int) {
	ch.inFlight--
	ch.inFlightBytes -= wireBytes
	ch.delivered++
	if nt.e.Observing() {
		nt.e.Metric(ch.name, "depth", float64(ch.inFlight))
		nt.e.Metric(ch.name, "inflight_bytes", float64(ch.inFlightBytes))
	}
}

// Port is node's attachment to the fabric; it satisfies wire.Conduit[T]
// so NICs drive it exactly like a point-to-point link.
type Port[T any] struct {
	nt   *Net[T]
	node int
	name string
}

// Send injects pkt, resolving its destination from the routing key.
// The returned time is the packet's entry into the fabric (lower bound
// on delivery); ok=false means dropped (down node, no live path).
func (p *Port[T]) Send(pkt T, wireBytes int) (sim.Time, bool) {
	return p.nt.send(p.node, pkt, wireBytes, p.nt.e.Now())
}

// SendAfter injects like Send with delivery floored by the upstream
// stage's readiness (cut-through DMA overlap), as wire.Link.SendAfter.
func (p *Port[T]) SendAfter(pkt T, wireBytes int, ready sim.Time) (sim.Time, bool) {
	return p.nt.send(p.node, pkt, wireBytes, ready)
}

// Recv blocks until a packet is ejected at this node, FIFO.
func (p *Port[T]) Recv(pr *sim.Proc) T { return p.nt.inbox[p.node].Recv(pr) }

// Pending reports ejected-but-unconsumed packets.
func (p *Port[T]) Pending() int { return p.nt.inbox[p.node].Len() }

// Name labels this attachment ("<net>.n<i>") in traces and spans.
func (p *Port[T]) Name() string { return p.name }
