package topo

import (
	"strings"
	"testing"

	"putget/internal/sim"
)

type pkt struct {
	key int
	val int
}

func keyOf(p pkt) int { return p.key }

var cfg = LinkConfig{BytesPerSecond: 1e9, Latency: 100 * sim.Nanosecond}

func newTestNet(t *testing.T, spec Spec, n int) *Net[pkt] {
	t.Helper()
	return NewNet[pkt](sim.NewEngine(), spec, n, cfg, "net", keyOf)
}

// torusDist computes the expected minimal hop count on an x*y*z torus.
func torusDist(a, b, x, y, z int) int {
	wrap := func(d, m int) int {
		if d < 0 {
			d = -d
		}
		d = d % m
		if m-d < d {
			d = m - d
		}
		return d
	}
	ax, ay, az := a%x, (a/x)%y, a/(x*y)
	bx, by, bz := b%x, (b/x)%y, b/(x*y)
	return wrap(ax-bx, x) + wrap(ay-by, y) + wrap(az-bz, z)
}

func TestTorusRoutesAreMinimal(t *testing.T) {
	const x, y, z = 3, 3, 2
	n := x * y * z
	nt := newTestNet(t, Spec{Kind: Torus3D, DimX: x, DimY: y, DimZ: z}, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			want := torusDist(src, dst, x, y, z)
			if got := nt.Hops(src, dst); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want %d", src, dst, got, want)
			}
			if src == dst {
				continue
			}
			p := nt.PathNames(src, dst)
			// inject + hops + eject
			if len(p) != want+2 {
				t.Fatalf("path %d->%d has %d cables, want %d: %v", src, dst, len(p), want+2, p)
			}
		}
	}
}

func TestFatTreeRoutesAreMinimal(t *testing.T) {
	const n = 16 // radix 4: 4 leaves x 4 spines
	nt := newTestNet(t, Spec{Kind: FatTree}, n)
	if nt.Routers() != 8 {
		t.Fatalf("routers = %d, want 4 leaves + 4 spines", nt.Routers())
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			want := 2 // leaf -> spine -> leaf
			if src/4 == dst/4 {
				want = 0 // same leaf
			}
			if got := nt.Hops(src, dst); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want %d", src, dst, got, want)
			}
		}
	}
}

// Deterministic routing must return the same path on every query, and
// d-mod-k dispersion must spread distinct destinations across spines.
func TestDeterministicRouteUniqueness(t *testing.T) {
	const n = 16
	nt := newTestNet(t, Spec{Kind: FatTree, Routing: Deterministic}, n)
	spines := map[string]bool{}
	for dst := 4; dst < 16; dst++ { // all cross-leaf from node 0
		first := strings.Join(nt.PathNames(0, dst), " ")
		for i := 0; i < 3; i++ {
			if again := strings.Join(nt.PathNames(0, dst), " "); again != first {
				t.Fatalf("deterministic path 0->%d changed: %q vs %q", dst, first, again)
			}
		}
		for _, cable := range nt.PathNames(0, dst) {
			if i := strings.Index(cable, ">spine"); i >= 0 {
				spines[cable[i+1:]] = true
			}
		}
	}
	if len(spines) < 2 {
		t.Fatalf("d-mod-k dispersion used only %d spine(s) for 12 destinations", len(spines))
	}
}

func TestTorusLinkFailureReroutes(t *testing.T) {
	const x, y, z = 3, 3, 1
	n := x * y * z
	// Kill the direct 0->1 cable (+x at origin). 0->1 must reroute; the
	// detour costs 2 extra hops on a 3-wide ring (0 -> 2 -> 1 wraps).
	nt := newTestNet(t, Spec{Kind: Torus3D, DimX: x, DimY: y, DimZ: z,
		DownLinks: [][2]int{{0, 1}}}, n)
	if got := nt.Hops(0, 1); got != 2 {
		t.Fatalf("Hops(0,1) after cable kill = %d, want 2 (detour)", got)
	}
	for _, cable := range nt.PathNames(0, 1) {
		if strings.Contains(cable, "t0.0.0>t1.0.0") {
			t.Fatalf("rerouted path still uses dead cable: %v", nt.PathNames(0, 1))
		}
	}
	// The failure is directional-pair: 1->0 must also avoid it.
	for _, cable := range nt.PathNames(1, 0) {
		if strings.Contains(cable, "t1.0.0>t0.0.0") {
			t.Fatalf("reverse path uses dead cable: %v", nt.PathNames(1, 0))
		}
	}
	// Other routes keep their minimal length.
	if got := nt.Hops(0, 2); got != 1 {
		t.Fatalf("unrelated route lengthened: Hops(0,2) = %d, want 1", got)
	}
}

func TestTorusNodeFailureKillsRouterAndTraffic(t *testing.T) {
	const x, y, z = 3, 1, 1
	// A 3-ring with the middle node dead: 0<->1 via node 2's... no —
	// nodes 0,1,2 in a ring; node 1 dead kills router 1, so 0->2 must go
	// direct (they are adjacent on the wrap cable).
	nt := newTestNet(t, Spec{Kind: Torus3D, DimX: x, DimY: y, DimZ: z,
		DownNodes: []int{1}}, 3)
	if got := nt.Hops(0, 2); got != 1 {
		t.Fatalf("Hops(0,2) = %d, want 1 (wrap cable)", got)
	}
	for _, cable := range nt.PathNames(0, 2) {
		if strings.Contains(cable, "t1.0.0") {
			t.Fatalf("path transits dead router: %v", nt.PathNames(0, 2))
		}
	}
	// Sending to the dead node drops at injection with an unreachable count.
	e := sim.NewEngine()
	nt2 := NewNet[pkt](e, Spec{Kind: Torus3D, DimX: 3, DimY: 1, DimZ: 1,
		DownNodes: []int{1}}, 3, cfg, "net", keyOf)
	nt2.Bind(0, 7, 1)
	var ok bool
	e.At(0, func() { _, ok = nt2.Port(0).Send(pkt{key: 7}, 100) })
	e.Run()
	if ok {
		t.Fatal("send to dead node reported ok=true")
	}
	if nt2.Unreachable() != 1 {
		t.Fatalf("Unreachable = %d, want 1", nt2.Unreachable())
	}
}

// End-to-end delivery: routed packets arrive FIFO per flow at the
// deterministic store-and-forward time.
func TestDeliveryTimingAndOrder(t *testing.T) {
	e := sim.NewEngine()
	nt := NewNet[pkt](e, Spec{Kind: FatTree, Radix: 2}, 4, cfg, "net", keyOf)
	nt.Bind(0, 5, 3) // node 0, key 5 -> node 3 (cross-leaf: 4 cables)
	var got []pkt
	var at []sim.Time
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			got = append(got, nt.Port(3).Recv(p))
			at = append(at, p.Now())
		}
	})
	e.At(0, func() {
		nt.Port(0).Send(pkt{key: 5, val: 1}, 1000)
		nt.Port(0).Send(pkt{key: 5, val: 2}, 1000)
	})
	e.Run()
	if len(got) != 2 || got[0].val != 1 || got[1].val != 2 {
		t.Fatalf("order/delivery broken: %+v", got)
	}
	// 4 cables, each 1us serialization + 100ns: first packet pipelines
	// store-and-forward: 4*(1us+100ns) = 4.4us.
	if want := sim.Time(4 * (sim.Microsecond + 100*sim.Nanosecond)); at[0] != want {
		t.Fatalf("first delivery at %v, want %v", at[0], want)
	}
	// Second packet queues one serialization behind on every hop but
	// pipelines: arrives one serialization window later.
	if want := at[0] + sim.Time(sim.Microsecond); at[1] != want {
		t.Fatalf("second delivery at %v, want %v", at[1], want)
	}
}

// Two flows forced through one shared cable contend: the second flow's
// packet serializes behind the first on the shared hop, visible in both
// the arrival time and the cable's depth high-water mark.
func TestSharedCableContention(t *testing.T) {
	e := sim.NewEngine()
	// Radix-2 fat-tree, 4 nodes, single spine: all cross-leaf traffic
	// shares the leaf0->spine0 uplink... with 2 spines d-mod-k may
	// split; force sharing by picking destinations with equal spine pick.
	nt := NewNet[pkt](e, Spec{Kind: FatTree, Radix: 2}, 4, cfg, "net", keyOf)
	nt.Bind(0, 1, 2)
	nt.Bind(1, 1, 2) // same destination: same spine under d-mod-k
	var at []sim.Time
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nt.Port(2).Recv(p)
			at = append(at, p.Now())
		}
	})
	e.At(0, func() {
		nt.Port(0).Send(pkt{key: 1, val: 1}, 1000)
		nt.Port(1).Send(pkt{key: 1, val: 2}, 1000)
	})
	e.Run()
	if len(at) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(at))
	}
	// Both injected at t=0 on separate injection cables, meet at the
	// shared spine->leaf1 cable (and the spine itself): the second
	// arrival is one serialization window after the first.
	if at[1]-at[0] != sim.Time(sim.Microsecond) {
		t.Fatalf("contention spacing = %v, want 1us (arrivals %v)", at[1]-at[0], at)
	}
	if nt.MaxDepth() < 2 {
		t.Fatalf("MaxDepth = %d, want >=2 on the shared cable", nt.MaxDepth())
	}
}

// Adaptive routing must steer a new flow away from a congested spine,
// and never re-pick a path while the flow has packets in flight.
func TestAdaptiveAvoidsCongestion(t *testing.T) {
	e := sim.NewEngine()
	nt := NewNet[pkt](e, Spec{Kind: FatTree, Radix: 2, Routing: Adaptive}, 4, cfg, "net", keyOf)
	nt.Bind(0, 1, 2)
	var before, after []string
	e.At(0, func() {
		// Uncongested tie: adaptive falls back to the deterministic pick.
		before = nt.PathNames(0, 2)
		// Load a 100us burst onto that path; it reserves the spine uplink
		// when it reaches the leaf (~100us), so by 150us the congestion
		// is visible and a fresh path decision must steer away.
		nt.Port(0).Send(pkt{key: 1}, 100000)
	})
	e.At(sim.Time(150*sim.Microsecond), func() {
		after = nt.PathNames(0, 2)
	})
	e.Spawn("rx", func(p *sim.Proc) { nt.Port(2).Recv(p) })
	e.Run()
	if len(before) == 0 || len(after) == 0 {
		t.Fatal("paths not captured")
	}
	if strings.Join(before, " ") == strings.Join(after, " ") {
		t.Fatalf("adaptive kept congested path:\n  %v\n  %v", before, after)
	}
}

func TestDerive3D(t *testing.T) {
	for _, tc := range []struct{ n, x, y, z int }{
		{2, 1, 1, 2}, {8, 2, 2, 2}, {16, 2, 3, 3}, {27, 3, 3, 3}, {64, 4, 4, 4}, {256, 6, 7, 7},
	} {
		x, y, z := derive3D(tc.n)
		if x*y*z < tc.n {
			t.Fatalf("derive3D(%d) = %dx%dx%d too small", tc.n, x, y, z)
		}
		if x != tc.x || y != tc.y || z != tc.z {
			t.Fatalf("derive3D(%d) = %dx%dx%d, want %dx%dx%d", tc.n, x, y, z, tc.x, tc.y, tc.z)
		}
	}
}

// The deterministic route memo must serve repeated path resolutions from
// the cache (keyed by attachment router + destination) and must never
// change the path it returns.
func TestDeterministicRouteMemo(t *testing.T) {
	const n = 16
	nt := newTestNet(t, Spec{Kind: FatTree, Routing: Deterministic}, n)
	if entries, hits := nt.RouteMemoStats(); entries != 0 || hits != 0 {
		t.Fatalf("fresh net memo = %d entries, %d hits; want 0, 0", entries, hits)
	}
	first := map[int]string{}
	for dst := 1; dst < n; dst++ {
		first[dst] = strings.Join(nt.PathNames(0, dst), " ")
	}
	entries, hits := nt.RouteMemoStats()
	if entries == 0 {
		t.Fatal("memo stayed empty after resolving paths")
	}
	// Same-leaf destinations 1..3 share node 0's attachment router but
	// have distinct destination segments, so entries grow per (router,
	// dst) pair; cross-leaf queries from other nodes reuse nothing yet.
	for dst := 1; dst < n; dst++ {
		if again := strings.Join(nt.PathNames(0, dst), " "); again != first[dst] {
			t.Fatalf("memoized path 0->%d changed: %q vs %q", dst, first[dst], again)
		}
	}
	entries2, hits2 := nt.RouteMemoStats()
	if entries2 != entries {
		t.Fatalf("re-querying grew the memo: %d -> %d entries", entries, entries2)
	}
	if hits2 <= hits {
		t.Fatalf("re-querying did not hit the memo: %d -> %d hits", hits, hits2)
	}
	// A different source on the same leaf shares the attachment router,
	// so its cross-leaf queries are pure memo hits.
	before, beforeHits := nt.RouteMemoStats()
	for dst := 4; dst < n; dst++ {
		nt.PathNames(1, dst)
	}
	after, afterHits := nt.RouteMemoStats()
	if after != before {
		t.Fatalf("same-leaf source grew the memo: %d -> %d entries", before, after)
	}
	if afterHits != beforeHits+12 {
		t.Fatalf("same-leaf source hits = %d, want %d", afterHits, beforeHits+12)
	}
}
