// Package topo models switched multi-node interconnect topologies —
// two-level fat-tree and 3D torus, per the APEnet+ lineage — built from
// the same serialization/latency physics as internal/wire. Each directed
// cable is a FIFO serialization point (sim.Server) plus fixed
// propagation latency; packets cross the fabric store-and-forward,
// reserving each hop when they arrive at it, so contention on shared
// links is visible hop by hop in the same depth/inflight/busy metrics a
// point-to-point wire.Link exposes.
//
// Routing is minimal-path with two knobs: Deterministic picks a fixed
// shortest path per (source, destination) pair by d-mod-k dispersion
// (spreads flows across equal-cost candidates by destination index, the
// classic static load-spreading rule), and Adaptive re-picks the
// least-busy minimal path — but only when the flow has no packets in
// flight, so per-flow FIFO ordering survives (RC transports and
// completion semantics upstream depend on it).
//
// Failures are static per Spec: down cables and down nodes are excluded
// from route computation (fabric-manager-style rerouting around the
// fault); destinations with no surviving path drop at injection with an
// unreachable count.
package topo

import (
	"fmt"

	"putget/internal/sim"
)

// Kind selects the switch graph shape.
type Kind int

const (
	// FatTree is a two-level folded Clos: leaves with Radix down-ports
	// each cabled to every spine; minimal inter-leaf paths are
	// leaf-spine-leaf with one equal-cost candidate per spine.
	FatTree Kind = iota
	// Torus3D places one router per node on a 3D grid with wraparound
	// cables in +/-x, +/-y, +/-z; minimal paths progress per dimension.
	Torus3D
)

func (k Kind) String() string {
	switch k {
	case FatTree:
		return "fattree"
	case Torus3D:
		return "torus"
	}
	return fmt.Sprintf("topo.Kind(%d)", int(k))
}

// Routing selects how a packet picks among equal-cost minimal paths.
type Routing int

const (
	// Deterministic fixes one minimal path per (src, dst) flow by
	// d-mod-k dispersion: candidate index = dst mod candidates.
	Deterministic Routing = iota
	// Adaptive re-picks a flow's minimal path greedily by least busy
	// next hop, but only between a flow's packet bursts (never while the
	// flow has packets in flight), preserving per-flow FIFO order.
	Adaptive
)

func (r Routing) String() string {
	if r == Adaptive {
		return "adaptive"
	}
	return "deterministic"
}

// Spec describes a topology instance. The zero value of the sizing
// fields derives a balanced shape from the node count.
type Spec struct {
	Kind    Kind
	Routing Routing

	// Radix is the fat-tree leaf down-port count (nodes per leaf); the
	// spine count equals it (full bisection). 0 derives ceil(sqrt(n)).
	Radix int

	// DimX/DimY/DimZ size the torus grid. All zero derives a near-cubic
	// grid with DimX*DimY*DimZ >= n.
	DimX, DimY, DimZ int

	// DownLinks lists failed cables (both directions die). For Torus3D
	// each entry is a pair of adjacent node indices; for FatTree each
	// entry is {leaf index, spine index}.
	DownLinks [][2]int
	// DownNodes lists failed nodes. On the torus the node's router dies
	// with it (the router sits on the NIC), cutting through-traffic; on
	// the fat-tree only the node's leaf attachment dies.
	DownNodes []int
}

// derive3D grows a near-cubic grid until it covers n nodes.
func derive3D(n int) (x, y, z int) {
	x, y, z = 1, 1, 1
	for x*y*z < n {
		switch {
		case z <= y && z <= x:
			z++
		case y <= x:
			y++
		default:
			x++
		}
	}
	return x, y, z
}

// isqrtCeil returns ceil(sqrt(n)) without floating point.
func isqrtCeil(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// channel is one directed cable: a FIFO serialization point plus fixed
// latency, with the same occupancy accounting a wire.Link keeps.
type channel struct {
	from, to int // router ids (-1 on the node side of inject/eject)
	name     string
	srv      *sim.Server
	lat      sim.Duration
	down     bool

	// freeAt is the last reservation's completion time — the adaptive
	// router's congestion signal (sim.Server keeps its own copy private).
	freeAt sim.Time

	inFlight      int
	inFlightBytes int
	maxDepth      int
	delivered     uint64
}

// graph is the routing-relevant switch structure, shared by the generic
// Net[T] runtime.
type graph struct {
	spec    Spec
	n       int
	routers int
	// nodeRouter maps node index to its attachment router.
	nodeRouter []int
	routerName []string
	downRouter []bool
	downNode   []bool
	// adj[r] lists r's outgoing router-to-router channels in canonical
	// order (torus: +x,-x,+y,-y,+z,-z; fat-tree: peer id ascending), the
	// order d-mod-k dispersion indexes into.
	adj [][]*channel
	// inject[i]/eject[i] are node i's attachment cables.
	inject, eject []*channel

	// dist[d][r] is the live-path hop count from router r to router d,
	// computed lazily per destination (failures are static, so tables
	// never invalidate). -1 marks unreachable.
	dist [][]int

	// detSeg memoizes deterministic router-to-router path segments keyed
	// by {source router, destination node}: the d-mod-k dispersion pick
	// depends only on the current router and the destination, never on
	// the source node, so every flow whose source shares an attachment
	// router reuses one resolution. With lazy connection setup at 1024
	// ranks this turns route resolution from per-flow recomputation into
	// a shared lookup (on a fat-tree, radix-many sources per leaf hit the
	// same entry). Lookup-only map: never iterated.
	detSeg map[[2]int][]*channel
	// detSegHits counts resolutions served from the memo.
	detSegHits uint64
}

func buildGraph(e *sim.Engine, spec Spec, n int, name string, bw float64, lat sim.Duration) *graph {
	if n < 2 {
		panic("topo: need at least 2 nodes")
	}
	g := &graph{spec: spec, n: n}
	newCh := func(from, to int, cname string) *channel {
		return &channel{from: from, to: to, name: name + "." + cname, srv: sim.NewServer(e, bw), lat: lat}
	}
	switch spec.Kind {
	case FatTree:
		radix := spec.Radix
		if radix <= 0 {
			radix = isqrtCeil(n)
		}
		leaves := (n + radix - 1) / radix
		spines := radix
		g.routers = leaves + spines
		g.routerName = make([]string, g.routers)
		for l := 0; l < leaves; l++ {
			g.routerName[l] = fmt.Sprintf("leaf%d", l)
		}
		for s := 0; s < spines; s++ {
			g.routerName[leaves+s] = fmt.Sprintf("spine%d", s)
		}
		g.adj = make([][]*channel, g.routers)
		for l := 0; l < leaves; l++ {
			for s := 0; s < spines; s++ {
				up := newCh(l, leaves+s, fmt.Sprintf("leaf%d>spine%d", l, s))
				down := newCh(leaves+s, l, fmt.Sprintf("spine%d>leaf%d", s, l))
				g.adj[l] = append(g.adj[l], up)
				g.adj[leaves+s] = append(g.adj[leaves+s], down)
			}
		}
		g.nodeRouter = make([]int, n)
		for i := 0; i < n; i++ {
			g.nodeRouter[i] = i / radix
		}
		for _, dl := range spec.DownLinks {
			l, s := dl[0], dl[1]
			if l < 0 || l >= leaves || s < 0 || s >= spines {
				panic(fmt.Sprintf("topo: DownLinks {%d,%d} is not a leaf/spine pair (%d leaves, %d spines)", l, s, leaves, spines))
			}
			markDown(g.adj[l], leaves+s)
			markDown(g.adj[leaves+s], l)
		}
	case Torus3D:
		x, y, z := spec.DimX, spec.DimY, spec.DimZ
		if x <= 0 && y <= 0 && z <= 0 {
			x, y, z = derive3D(n)
		}
		if x < 1 || y < 1 || z < 1 || x*y*z < n {
			panic(fmt.Sprintf("topo: torus %dx%dx%d cannot hold %d nodes", x, y, z, n))
		}
		g.routers = x * y * z
		g.routerName = make([]string, g.routers)
		g.adj = make([][]*channel, g.routers)
		coord := func(r int) (cx, cy, cz int) { return r % x, (r / x) % y, r / (x * y) }
		id := func(cx, cy, cz int) int { return cx + x*(cy+y*cz) }
		for r := 0; r < g.routers; r++ {
			cx, cy, cz := coord(r)
			g.routerName[r] = fmt.Sprintf("t%d.%d.%d", cx, cy, cz)
		}
		mod := func(v, m int) int { return ((v % m) + m) % m }
		for r := 0; r < g.routers; r++ {
			cx, cy, cz := coord(r)
			// Canonical neighbor order +x,-x,+y,-y,+z,-z; a dimension of
			// size 2 has one cable (not two parallel ones), size 1 none.
			var nbs []int
			add := func(to int) {
				if to == r {
					return
				}
				for _, seen := range nbs {
					if seen == to {
						return
					}
				}
				nbs = append(nbs, to)
			}
			add(id(mod(cx+1, x), cy, cz))
			add(id(mod(cx-1, x), cy, cz))
			add(id(cx, mod(cy+1, y), cz))
			add(id(cx, mod(cy-1, y), cz))
			add(id(cx, cy, mod(cz+1, z)))
			add(id(cx, cy, mod(cz-1, z)))
			for _, to := range nbs {
				g.adj[r] = append(g.adj[r], newCh(r, to, g.routerName[r]+">"+g.routerName[to]))
			}
		}
		g.nodeRouter = make([]int, n)
		for i := 0; i < n; i++ {
			g.nodeRouter[i] = i
		}
		for _, dl := range spec.DownLinks {
			a, b := dl[0], dl[1]
			if a < 0 || a >= g.routers || b < 0 || b >= g.routers || !markDown(g.adj[a], b) {
				panic(fmt.Sprintf("topo: DownLinks {%d,%d} is not a torus cable", a, b))
			}
			markDown(g.adj[b], a)
		}
	default:
		panic(fmt.Sprintf("topo: unknown Kind %d", int(spec.Kind)))
	}

	g.downRouter = make([]bool, g.routers)
	g.downNode = make([]bool, n)
	for _, d := range spec.DownNodes {
		if d < 0 || d >= n {
			panic(fmt.Sprintf("topo: DownNodes %d out of range (n=%d)", d, n))
		}
		g.downNode[d] = true
		if spec.Kind == Torus3D {
			// The torus router rides on the NIC: a dead node also kills
			// its router, so through-traffic must route around it.
			g.downRouter[g.nodeRouter[d]] = true
		}
	}

	g.inject = make([]*channel, n)
	g.eject = make([]*channel, n)
	for i := 0; i < n; i++ {
		r := g.nodeRouter[i]
		g.inject[i] = newCh(-1, r, fmt.Sprintf("n%d>%s", i, g.routerName[r]))
		g.eject[i] = newCh(r, -1, fmt.Sprintf("%s>n%d", g.routerName[r], i))
		if g.downNode[i] {
			g.inject[i].down = true
			g.eject[i].down = true
		}
	}
	g.dist = make([][]int, g.routers)
	g.detSeg = make(map[[2]int][]*channel)
	return g
}

// markDown marks the channel from this adjacency list to router `to` as
// down; reports whether such a channel existed.
func markDown(chs []*channel, to int) bool {
	found := false
	for _, ch := range chs {
		if ch.to == to {
			ch.down = true
			found = true
		}
	}
	return found
}

// distTo returns (lazily computing) the hop-count table toward dst
// router over live channels and routers: distTo(d)[r] is the number of
// router-to-router hops from r to d, -1 if unreachable.
func (g *graph) distTo(d int) []int {
	if t := g.dist[d]; t != nil {
		return t
	}
	t := make([]int, g.routers)
	for i := range t {
		t[i] = -1
	}
	// BFS from d over reversed edges. Channels are symmetric pairs in
	// both topologies, so scanning each frontier router's outgoing live
	// channels and relaxing their peers walks the reverse graph exactly.
	var frontier []int
	if !g.downRouter[d] {
		t[d] = 0
		frontier = append(frontier, d)
	}
	for len(frontier) > 0 {
		var next []int
		for _, r := range frontier {
			for _, ch := range g.adj[r] {
				if ch.down || g.downRouter[ch.to] || t[ch.to] >= 0 {
					continue
				}
				t[ch.to] = t[r] + 1
				next = append(next, ch.to)
			}
		}
		frontier = next
	}
	g.dist[d] = t
	return t
}

// candidates returns r's outgoing channels that lie on a minimal live
// path toward dst router, in canonical order.
func (g *graph) candidates(r, dst int, buf []*channel) []*channel {
	t := g.distTo(dst)
	if t[r] < 0 {
		return buf[:0]
	}
	buf = buf[:0]
	for _, ch := range g.adj[r] {
		if ch.down || g.downRouter[ch.to] || t[ch.to] < 0 {
			continue
		}
		if t[ch.to] == t[r]-1 {
			buf = append(buf, ch)
		}
	}
	return buf
}

// pathRouters computes the flow path from src to dst node as the channel
// sequence inject, router hops, eject — nil if no live path exists.
// adaptive selects among equal-cost candidates by least-busy next hop
// (ties falling back to the deterministic pick); deterministic uses
// d-mod-k dispersion and memoizes the router segment (see detSeg).
func (g *graph) path(src, dst int, adaptive bool) []*channel {
	if g.downNode[src] || g.downNode[dst] {
		return nil
	}
	sr, dr := g.nodeRouter[src], g.nodeRouter[dst]
	t := g.distTo(dr)
	if t[sr] < 0 {
		return nil
	}
	if !adaptive {
		seg, ok := g.detSeg[[2]int{sr, dst}]
		if ok {
			g.detSegHits++
		} else {
			seg = g.routerSegment(sr, dr, dst, t)
			g.detSeg[[2]int{sr, dst}] = seg
		}
		if seg == nil && sr != dr {
			return nil
		}
		path := make([]*channel, 0, len(seg)+2)
		path = append(path, g.inject[src])
		path = append(path, seg...)
		return append(path, g.eject[dst])
	}
	path := make([]*channel, 0, t[sr]+2)
	path = append(path, g.inject[src])
	var buf [8]*channel
	r := sr
	for r != dr {
		cands := g.candidates(r, dr, buf[:0])
		if len(cands) == 0 {
			return nil // cannot happen: t[r] >= 0 implies a candidate
		}
		pick := cands[dst%len(cands)]
		for _, ch := range cands {
			if ch.freeAt < pick.freeAt {
				pick = ch
			}
		}
		path = append(path, pick)
		r = pick.to
	}
	return append(path, g.eject[dst])
}

// routerSegment walks the deterministic (d-mod-k) router-to-router hops
// from router sr toward destination node dst attached at router dr.
func (g *graph) routerSegment(sr, dr, dst int, t []int) []*channel {
	if sr == dr {
		return nil
	}
	seg := make([]*channel, 0, t[sr])
	var buf [8]*channel
	r := sr
	for r != dr {
		cands := g.candidates(r, dr, buf[:0])
		if len(cands) == 0 {
			return nil // cannot happen: t[r] >= 0 implies a candidate
		}
		pick := cands[dst%len(cands)]
		seg = append(seg, pick)
		r = pick.to
	}
	return seg
}
