package runner

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunOrderedRegardlessOfWorkers(t *testing.T) {
	cells := make([]Cell, 50)
	for i := range cells {
		i := i
		cells[i] = Cell{Name: fmt.Sprintf("c%d", i), Run: func() string { return fmt.Sprintf("out%d", i) }}
	}
	var want []Result
	for _, par := range []int{1, 2, 4, 8, 64} {
		got := Run(cells, Options{Parallel: par})
		if len(got) != len(cells) {
			t.Fatalf("parallel %d: %d results", par, len(got))
		}
		for i, r := range got {
			if r.Index != i || r.Output != fmt.Sprintf("out%d", i) || r.Err != nil {
				t.Fatalf("parallel %d: result %d = %+v", par, i, r)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i].Output != want[i].Output {
				t.Fatalf("parallel %d: output diverged at %d", par, i)
			}
		}
	}
}

func TestRunPanicIsolatesCell(t *testing.T) {
	cells := []Cell{
		{Name: "ok1", Run: func() string { return "a" }},
		{Name: "boom", Run: func() string { panic("kaboom") }},
		{Name: "ok2", Run: func() string { return "b" }},
	}
	got := Run(cells, Options{Parallel: 3})
	if got[0].Err != nil || got[0].Output != "a" {
		t.Fatalf("cell 0: %+v", got[0])
	}
	if got[2].Err != nil || got[2].Output != "b" {
		t.Fatalf("cell 2: %+v", got[2])
	}
	if got[1].Err == nil || !strings.Contains(got[1].Err.Error(), "kaboom") ||
		!strings.Contains(got[1].Err.Error(), `cell "boom"`) {
		t.Fatalf("cell 1 error = %v", got[1].Err)
	}
}

func TestRunProgressSeesEveryCellOnce(t *testing.T) {
	cells := make([]Cell, 20)
	for i := range cells {
		i := i
		cells[i] = Cell{Name: fmt.Sprintf("c%d", i), Run: func() string { return "x" }}
	}
	var mu sync.Mutex
	seen := map[int]int{}
	Run(cells, Options{Parallel: 4, Progress: func(r Result) {
		mu.Lock()
		seen[r.Index]++
		mu.Unlock()
	}})
	if len(seen) != len(cells) {
		t.Fatalf("progress saw %d cells, want %d", len(seen), len(cells))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d reported %d times", i, n)
		}
	}
}

func TestMapOrderAndCoverage(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	var calls atomic.Int64
	got := Map(8, items, func(i, v int) int {
		calls.Add(1)
		return v + i
	})
	if calls.Load() != int64(len(items)) {
		t.Fatalf("fn called %d times, want %d", calls.Load(), len(items))
	}
	for i, v := range got {
		if v != i*3+i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapRepanicsLowestIndex(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Map did not re-panic")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "item 3 panicked") {
			t.Fatalf("panic = %v, want lowest-index item 3", msg)
		}
	}()
	Map(4, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(i, v int) int {
		if i == 3 || i == 6 {
			panic(fmt.Sprintf("bad %d", i))
		}
		return v
	})
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("Workers must be >= 1")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}
