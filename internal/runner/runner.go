// Package runner executes independent experiment cells across a bounded
// worker pool.
//
// A cell is one self-contained unit of a sweep — it builds its own
// sim.Engine and testbed, measures, and returns a string. Cells share
// nothing, so the pool runs them concurrently: workers steal the next
// unclaimed cell from a shared queue (dynamic load balancing — long cells
// do not hold up short ones on other workers). Results are collected into
// a slice ordered by cell index, so the merged output is bit-identical
// regardless of worker count or completion order.
//
// A panicking cell fails only itself: the panic is captured with its
// stack and reported as that cell's error, and the remaining cells keep
// running.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Cell is one independent unit of work.
type Cell struct {
	Name string // used in progress lines and panic diagnostics
	Run  func() string
}

// Result is the outcome of one cell.
type Result struct {
	Index   int
	Name    string
	Output  string // valid when Err is nil
	Err     error  // non-nil if the cell panicked
	Elapsed time.Duration
}

// Options configures a Run.
type Options struct {
	// Parallel is the worker count; values < 1 default to GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, is called once per cell as it finishes, in
	// completion order (not index order). Calls are serialized.
	Progress func(Result)
}

// Workers resolves a -parallel flag value to a concrete worker count.
func Workers(parallel int) int {
	if parallel < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// Run executes every cell across the worker pool and returns the results
// ordered by cell index. The ordering — and therefore any output merged
// from Result.Output in sequence — does not depend on Options.Parallel.
func Run(cells []Cell, opts Options) []Result {
	results := make([]Result, len(cells))
	if len(cells) == 0 {
		return results
	}
	workers := Workers(opts.Parallel)
	if workers > len(cells) {
		workers = len(cells)
	}

	var (
		next       atomic.Int64 // shared queue head: workers steal the next cell
		progressMu sync.Mutex
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//putget:allow engineaffinity -- the runner pool IS the sanctioned concurrency layer; each worker runs isolated per-cell engines
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				r := runCell(i, cells[i])
				results[i] = r
				if opts.Progress != nil {
					progressMu.Lock()
					opts.Progress(r)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// runCell executes one cell with panic isolation.
func runCell(i int, c Cell) (r Result) {
	r = Result{Index: i, Name: c.Name}
	start := time.Now() //putget:allow nowalltime -- wall-clock progress timing, reported to stderr only; never feeds virtual time or results
	defer func() {
		r.Elapsed = time.Since(start) //putget:allow nowalltime -- same wall-clock progress timer; Result.Output carries only virtual-time measurements
		if p := recover(); p != nil {
			r.Err = fmt.Errorf("cell %q panicked: %v\n%s", c.Name, p, debug.Stack())
		}
	}()
	r.Output = c.Run()
	return r
}

// Map evaluates fn over every item with bounded parallelism and returns
// the results in input order. It is the typed building block the sweep
// layer uses to shard (mode x size x fault) grids: each fn call builds
// its own isolated engine, and the ordered return slice makes the merged
// output independent of the worker count.
//
// If any fn call panics, Map re-panics on the caller's goroutine with the
// lowest-index panic (deterministic under concurrency) after all other
// items finish.
func Map[T, R any](parallel int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	workers := Workers(parallel)
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		// Fast path: run inline, panics propagate with their natural stack.
		for i := range items {
			out[i] = fn(i, items[i])
		}
		return out
	}

	type failure struct {
		index int
		err   error
	}
	var (
		next  atomic.Int64
		mu    sync.Mutex
		first *failure
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//putget:allow engineaffinity -- the runner pool IS the sanctioned concurrency layer; Map shards build their own engines inside fn
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							if first == nil || i < first.index {
								first = &failure{i, fmt.Errorf("runner.Map: item %d panicked: %v\n%s", i, p, debug.Stack())}
							}
							mu.Unlock()
						}
					}()
					out[i] = fn(i, items[i])
				}()
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first.err)
	}
	return out
}
