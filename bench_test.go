// Benchmarks mapping 1:1 to the paper's tables and figures. Each runs a
// representative cross-section of its experiment on the simulated testbed
// and reports the headline numbers as custom metrics (virtual-time
// results; wall time only reflects simulation cost). The full sweeps that
// print the complete rows/series live in cmd/putgetbench.
package putget_test

import (
	"testing"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/shmem"
)

// BenchmarkFig1aExtollLatency regenerates the EXTOLL latency comparison at
// the 1 KiB cross-section (paper Fig. 1a).
func BenchmarkFig1aExtollLatency(b *testing.B) {
	p := cluster.Default()
	var direct, pollGPU, assisted, host float64
	for i := 0; i < b.N; i++ {
		direct = bench.ExtollPingPong(p, bench.ExtDirect, 1024, 10, 2).HalfRTT.Microseconds()
		pollGPU = bench.ExtollPingPong(p, bench.ExtPollOnGPU, 1024, 10, 2).HalfRTT.Microseconds()
		assisted = bench.ExtollPingPong(p, bench.ExtAssisted, 1024, 10, 2).HalfRTT.Microseconds()
		host = bench.ExtollPingPong(p, bench.ExtHostControlled, 1024, 10, 2).HalfRTT.Microseconds()
	}
	b.ReportMetric(direct, "direct_us")
	b.ReportMetric(pollGPU, "pollGPU_us")
	b.ReportMetric(assisted, "assisted_us")
	b.ReportMetric(host, "host_us")
	b.ReportMetric(direct/host, "direct/host")
}

// BenchmarkFig1bExtollBandwidth regenerates the EXTOLL bandwidth peak and
// the post-1MiB collapse (paper Fig. 1b).
func BenchmarkFig1bExtollBandwidth(b *testing.B) {
	p := cluster.Default()
	var peak, gpu, collapsed float64
	for i := 0; i < b.N; i++ {
		peak = bench.ExtollStream(p, bench.ExtHostControlled, 256<<10, 16).BytesPerSec
		gpu = bench.ExtollStream(p, bench.ExtDirect, 16<<10, 24).BytesPerSec
		collapsed = bench.ExtollStream(p, bench.ExtHostControlled, 4<<20, 6).BytesPerSec
	}
	b.ReportMetric(peak/1e6, "host_peak_MB/s")
	b.ReportMetric(gpu/1e6, "gpu_16KiB_MB/s")
	b.ReportMetric(collapsed/1e6, "host_4MiB_MB/s")
}

// BenchmarkFig2ExtollMessageRate regenerates the EXTOLL message-rate
// endpoints (paper Fig. 2).
func BenchmarkFig2ExtollMessageRate(b *testing.B) {
	p := cluster.Default()
	var blocks, host, assisted float64
	for i := 0; i < b.N; i++ {
		blocks = bench.ExtollMessageRate(p, bench.RateBlocks, 32, 80).MsgsPerSec
		host = bench.ExtollMessageRate(p, bench.RateHostControlled, 32, 80).MsgsPerSec
		assisted = bench.ExtollMessageRate(p, bench.RateAssisted, 32, 80).MsgsPerSec
	}
	b.ReportMetric(blocks, "blocks32_msg/s")
	b.ReportMetric(host, "host32_msg/s")
	b.ReportMetric(assisted, "assisted32_msg/s")
}

// BenchmarkTable1ExtollCounters regenerates the polling-approach counter
// comparison (paper Table I; 100 iterations, 1 KiB).
func BenchmarkTable1ExtollCounters(b *testing.B) {
	p := cluster.Default()
	var sysInstr, devInstr, devWrites, sysReads uint64
	for i := 0; i < b.N; i++ {
		direct := bench.ExtollPingPong(p, bench.ExtDirect, 1024, 100, 0).Counters
		poll := bench.ExtollPingPong(p, bench.ExtPollOnGPU, 1024, 100, 0).Counters
		sysInstr, devInstr = direct.InstrExecuted, poll.InstrExecuted
		devWrites, sysReads = poll.SysmemWrites32B, direct.SysmemReads32B
	}
	b.ReportMetric(float64(sysInstr), "sysmem_instr")
	b.ReportMetric(float64(devInstr), "devmem_instr")
	b.ReportMetric(float64(devWrites), "devmem_sysW")
	b.ReportMetric(float64(sysReads), "sysmem_sysR")
}

// BenchmarkFig3PollingSplit regenerates the put-vs-polling decomposition
// at small and large payloads (paper Fig. 3).
func BenchmarkFig3PollingSplit(b *testing.B) {
	p := cluster.Default()
	var sysSmall, devSmall, sysBig float64
	for i := 0; i < b.N; i++ {
		sysSmall = bench.ExtollPingPong(p, bench.ExtDirect, 1024, 10, 2).Ratio()
		devSmall = bench.ExtollPingPong(p, bench.ExtPollOnGPU, 1024, 10, 2).Ratio()
		sysBig = bench.ExtollPingPong(p, bench.ExtDirect, 4<<20, 2, 1).Ratio()
	}
	b.ReportMetric(sysSmall, "sysmem_1KiB_ratio")
	b.ReportMetric(devSmall, "devmem_1KiB_ratio")
	b.ReportMetric(sysBig, "sysmem_4MiB_ratio")
}

// BenchmarkFig4aIBLatency regenerates the InfiniBand latency comparison at
// the 1 KiB cross-section (paper Fig. 4a).
func BenchmarkFig4aIBLatency(b *testing.B) {
	p := cluster.Default()
	var gpuQ, hostQ, assisted, host float64
	for i := 0; i < b.N; i++ {
		gpuQ = bench.IBPingPong(p, bench.IBBufOnGPU, 1024, 10, 2).HalfRTT.Microseconds()
		hostQ = bench.IBPingPong(p, bench.IBBufOnHost, 1024, 10, 2).HalfRTT.Microseconds()
		assisted = bench.IBPingPong(p, bench.IBAssisted, 1024, 10, 2).HalfRTT.Microseconds()
		host = bench.IBPingPong(p, bench.IBHostControlled, 1024, 10, 2).HalfRTT.Microseconds()
	}
	b.ReportMetric(gpuQ, "bufOnGPU_us")
	b.ReportMetric(hostQ, "bufOnHost_us")
	b.ReportMetric(assisted, "assisted_us")
	b.ReportMetric(host, "host_us")
	b.ReportMetric(gpuQ/host, "gpu/host")
}

// BenchmarkFig4bIBBandwidth regenerates the InfiniBand bandwidth peak and
// collapse (paper Fig. 4b).
func BenchmarkFig4bIBBandwidth(b *testing.B) {
	p := cluster.Default()
	var peak, gpu, collapsed float64
	for i := 0; i < b.N; i++ {
		peak = bench.IBStream(p, bench.IBHostControlled, 256<<10, 16).BytesPerSec
		gpu = bench.IBStream(p, bench.IBBufOnGPU, 16<<10, 24).BytesPerSec
		collapsed = bench.IBStream(p, bench.IBHostControlled, 4<<20, 6).BytesPerSec
	}
	b.ReportMetric(peak/1e6, "host_peak_MB/s")
	b.ReportMetric(gpu/1e6, "gpu_16KiB_MB/s")
	b.ReportMetric(collapsed/1e6, "host_4MiB_MB/s")
}

// BenchmarkFig5IBMessageRate regenerates the InfiniBand message-rate
// endpoints (paper Fig. 5) — GPU agents approach the host rate at 32 QPs.
func BenchmarkFig5IBMessageRate(b *testing.B) {
	p := cluster.Default()
	var blocks1, blocks32, host32, assisted32 float64
	for i := 0; i < b.N; i++ {
		blocks1 = bench.IBMessageRate(p, bench.RateBlocks, 1, 80).MsgsPerSec
		blocks32 = bench.IBMessageRate(p, bench.RateBlocks, 32, 80).MsgsPerSec
		host32 = bench.IBMessageRate(p, bench.RateHostControlled, 32, 80).MsgsPerSec
		assisted32 = bench.IBMessageRate(p, bench.RateAssisted, 32, 80).MsgsPerSec
	}
	b.ReportMetric(blocks1, "blocks1_msg/s")
	b.ReportMetric(blocks32, "blocks32_msg/s")
	b.ReportMetric(host32, "host32_msg/s")
	b.ReportMetric(assisted32, "assisted32_msg/s")
}

// BenchmarkTable2IBCounters regenerates the buffer-placement counter
// comparison and single-op costs (paper Table II).
func BenchmarkTable2IBCounters(b *testing.B) {
	p := cluster.Default()
	var hostInstr, gpuInstr, post, poll uint64
	for i := 0; i < b.N; i++ {
		host := bench.IBPingPong(p, bench.IBBufOnHost, 1024, 100, 0).Counters
		gpu := bench.IBPingPong(p, bench.IBBufOnGPU, 1024, 100, 0).Counters
		hostInstr, gpuInstr = host.InstrExecuted, gpu.InstrExecuted
		post, poll = bench.IBSingleOpInstr(p)
	}
	b.ReportMetric(float64(hostInstr), "bufHost_instr")
	b.ReportMetric(float64(gpuInstr), "bufGPU_instr")
	b.ReportMetric(float64(post), "post_send_instr")
	b.ReportMetric(float64(poll), "poll_cq_instr")
}

// ---- ablation benchmarks (design choices called out in DESIGN.md) ----

// BenchmarkAblationEndianness quantifies the big-endian conversion
// overhead the static-field optimization removes (§VI claim 2).
func BenchmarkAblationEndianness(b *testing.B) {
	p := cluster.Default()
	var with, without uint64
	for i := 0; i < b.N; i++ {
		with, without = bench.AblationEndianness(p)
	}
	b.ReportMetric(float64(with), "with_opt_instr")
	b.ReportMetric(float64(without), "without_opt_instr")
}

// BenchmarkAblationCollectivePost quantifies warp-collective descriptor
// generation versus the single-thread APIs (§VI claim 2).
func BenchmarkAblationCollectivePost(b *testing.B) {
	p := cluster.Default()
	var ex, ib bench.CollectiveCost
	for i := 0; i < b.N; i++ {
		ex = bench.AblationCollectivePostExtoll(p)
		ib = bench.AblationCollectivePostIB(p)
	}
	b.ReportMetric(float64(ex.SingleTxns), "extoll_single_txns")
	b.ReportMetric(float64(ex.CollectiveTxns), "extoll_warp_txns")
	b.ReportMetric(float64(ib.SingleInstr), "ib_single_instr")
	b.ReportMetric(float64(ib.CollectiveInstr), "ib_warp_instr")
}

// BenchmarkAblationNotifPlacement quantifies moving EXTOLL notification
// rings into GPU memory (§VI claim 3).
func BenchmarkAblationNotifPlacement(b *testing.B) {
	p := cluster.Default()
	var host, dev bench.LatencyResult
	for i := 0; i < b.N; i++ {
		host, dev = bench.AblationNotifPlacement(p, 1024)
	}
	b.ReportMetric(host.HalfRTT.Microseconds(), "host_rings_us")
	b.ReportMetric(dev.HalfRTT.Microseconds(), "dev_rings_us")
}

// BenchmarkAblationP2PCollapse isolates the PCIe peer-to-peer read
// anomaly behind the large-message bandwidth droop.
func BenchmarkAblationP2PCollapse(b *testing.B) {
	p := cluster.Default()
	var with, without bench.BandwidthResult
	for i := 0; i < b.N; i++ {
		with, without = bench.AblationP2PCollapse(p)
	}
	b.ReportMetric(with.BytesPerSec/1e6, "with_collapse_MB/s")
	b.ReportMetric(without.BytesPerSec/1e6, "without_MB/s")
}

// BenchmarkMsgVsPut quantifies the §II-B two-sided overhead against
// one-sided puts at 1 KiB.
func BenchmarkMsgVsPut(b *testing.B) {
	p := cluster.Default()
	var two, one float64
	for i := 0; i < b.N; i++ {
		two = bench.MsgPingPong(p, 1024, 8, 2).HalfRTT.Microseconds()
		one = bench.IBPingPong(p, bench.IBBufOnGPU, 1024, 8, 2).HalfRTT.Microseconds()
	}
	b.ReportMetric(two, "sendrecv_us")
	b.ReportMetric(one, "put_us")
	b.ReportMetric((two/one-1)*100, "overhead_%")
}

// BenchmarkStagedVsGPUDirect measures the §II staging trade-off at the
// crossover sizes.
func BenchmarkStagedVsGPUDirect(b *testing.B) {
	p := cluster.Default()
	var d64, s64, d4m, s4m float64
	for i := 0; i < b.N; i++ {
		d64 = bench.ExtollStream(p, bench.ExtHostControlled, 64<<10, 10).BytesPerSec
		s64 = bench.StagedStream(p, 64<<10, 10).BytesPerSec
		d4m = bench.ExtollStream(p, bench.ExtHostControlled, 4<<20, 8).BytesPerSec
		s4m = bench.StagedStream(p, 4<<20, 8).BytesPerSec
	}
	b.ReportMetric(d64/1e6, "gpudirect_64KiB_MB/s")
	b.ReportMetric(s64/1e6, "staged_64KiB_MB/s")
	b.ReportMetric(d4m/1e6, "gpudirect_4MiB_MB/s")
	b.ReportMetric(s4m/1e6, "staged_4MiB_MB/s")
}

// BenchmarkShmemPrimitives tracks the GPU-SHMEM layer's core costs.
func BenchmarkShmemPrimitives(b *testing.B) {
	p := cluster.Default()
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	var barrierUs, pingUs float64
	for i := 0; i < b.N; i++ {
		w := shmem.NewWorld(p, 1<<20)
		flag := w.Malloc(16)
		const rounds = 10
		var bSum, pSum int64
		w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
			// Barrier cost.
			s := int64(warp.Now())
			for r := 0; r < rounds; r++ {
				pe.Barrier(warp)
			}
			bSum = int64(warp.Now()) - s
			// PutImm+WaitUntil ping-pong.
			mine, theirs := flag, flag+8
			s = int64(warp.Now())
			for r := uint64(1); r <= rounds; r++ {
				if pe.Rank == 0 {
					pe.PutImm(warp, theirs, r)
					pe.Quiet(warp)
					pe.WaitUntil(warp, mine, r)
				} else {
					pe.WaitUntil(warp, theirs, r)
					pe.PutImm(warp, mine, r)
					pe.Quiet(warp)
				}
			}
			if pe.Rank == 0 {
				pSum = int64(warp.Now()) - s
			}
		})
		w.Shutdown()
		barrierUs = float64(bSum) / rounds / 1e6
		pingUs = float64(pSum) / rounds / 2 / 1e6
	}
	b.ReportMetric(barrierUs, "barrier_us")
	b.ReportMetric(pingUs, "halfRTT_us")
}
