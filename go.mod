module putget

go 1.22
