// Package putget is the public API of this repository: a deterministic,
// simulation-backed reproduction of "Analyzing Put/Get APIs for
// Thread-Collaborative Processors" (Klenk, Oden, Fröning; ICPP 2014).
//
// It builds two-node testbeds — each node a host CPU, host RAM, a
// Kepler-class GPU and either an EXTOLL RMA NIC or an InfiniBand FDR HCA
// on a modelled PCIe fabric — and exposes the paper's GPU-extended
// put/get APIs together with the microbenchmarks (latency, bandwidth,
// message rate) and performance-counter analyses of the evaluation
// section. Everything runs on a discrete-event simulator in virtual time,
// so results are exactly reproducible on any machine.
//
// Quick start:
//
//	tb := putget.NewExtollTestbed(putget.DefaultParams())
//	res := tb.PingPong(putget.ModeDirect, 1024, 10, 2)
//	fmt.Println(res.HalfRTT)
//
// For lower-level access (device-side kernels, raw NIC models), use the
// Testbed's Cluster together with the internal core API re-exported here
// via RMA/Verbs handles.
package putget

import (
	"fmt"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/sim"
)

// Params re-exports the testbed parameter set.
type Params = cluster.Params

// DefaultParams returns the calibrated FPGA-era testbed parameters
// (EXTOLL Galibier at 157 MHz, IB 4X FDR, PCIe gen3-x8-class links).
func DefaultParams() Params { return cluster.Default() }

// ASICParams returns the projected EXTOLL ASIC profile (700 MHz,
// 128-bit datapath) the paper mentions.
func ASICParams() Params { return cluster.ASIC() }

// Mode selects the control path of an experiment, unifying the paper's
// EXTOLL and InfiniBand series names.
type Mode int

const (
	// ModeDirect is GPU-controlled with completion information polled
	// where the fabric puts it: EXTOLL notification rings in system
	// memory, or InfiniBand queues in GPU memory (dev2dev-direct /
	// dev2dev-bufOnGPU).
	ModeDirect Mode = iota
	// ModePollOnGPU is GPU-controlled with data-polling on device memory
	// (EXTOLL dev2dev-pollOnGPU) or host-resident queues (InfiniBand
	// dev2dev-bufOnHost).
	ModePollOnGPU
	// ModeHostAssisted has the GPU trigger a CPU helper thread via a
	// host-memory flag.
	ModeHostAssisted
	// ModeHostControlled keeps all control flow on the CPU.
	ModeHostControlled
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "direct"
	case ModePollOnGPU:
		return "pollOnGPU"
	case ModeHostAssisted:
		return "hostAssisted"
	case ModeHostControlled:
		return "hostControlled"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Agents selects how message-rate senders are organized.
type Agents = bench.RateMethod

// Agent organizations for MessageRate.
const (
	AgentsBlocks         = bench.RateBlocks
	AgentsKernels        = bench.RateKernels
	AgentsAssisted       = bench.RateAssisted
	AgentsHostControlled = bench.RateHostControlled
)

// Results re-exported from the benchmark layer.
type (
	// LatencyResult is one ping-pong measurement (see bench.LatencyResult).
	LatencyResult = bench.LatencyResult
	// BandwidthResult is one streaming measurement.
	BandwidthResult = bench.BandwidthResult
	// RateResult is one message-rate measurement.
	RateResult = bench.RateResult
)

// Duration re-exports virtual time durations (picoseconds).
type Duration = sim.Duration

// FabricKind selects the interconnect of a testbed.
type FabricKind int

// Supported fabrics.
const (
	FabricExtoll FabricKind = iota
	FabricInfiniband
)

// String implements fmt.Stringer.
func (f FabricKind) String() string {
	if f == FabricExtoll {
		return "extoll"
	}
	return "infiniband"
}

// Testbed is a two-node simulated cluster plus the paper's benchmark
// suite. Each benchmark call builds a fresh deterministic simulation, so
// calls are independent and repeatable.
type Testbed struct {
	kind   FabricKind
	params Params
}

// NewExtollTestbed creates an EXTOLL RMA testbed description.
func NewExtollTestbed(p Params) *Testbed {
	return &Testbed{kind: FabricExtoll, params: p}
}

// NewIBTestbed creates an InfiniBand Verbs testbed description.
func NewIBTestbed(p Params) *Testbed {
	return &Testbed{kind: FabricInfiniband, params: p}
}

// Kind returns the testbed's fabric.
func (t *Testbed) Kind() FabricKind { return t.kind }

// Params returns the testbed parameters.
func (t *Testbed) Params() Params { return t.params }

func (t *Testbed) extollMode(m Mode) bench.ControlMode {
	switch m {
	case ModeDirect:
		return bench.ExtDirect
	case ModePollOnGPU:
		return bench.ExtPollOnGPU
	case ModeHostAssisted:
		return bench.ExtAssisted
	default:
		return bench.ExtHostControlled
	}
}

func (t *Testbed) ibMode(m Mode) bench.ControlMode {
	switch m {
	case ModeDirect:
		return bench.IBBufOnGPU
	case ModePollOnGPU:
		return bench.IBBufOnHost
	case ModeHostAssisted:
		return bench.IBAssisted
	default:
		return bench.IBHostControlled
	}
}

// PingPong measures one-way latency over `iters` measured ping-pong
// exchanges of `size` bytes (after `warmup` unmeasured ones).
func (t *Testbed) PingPong(m Mode, size, iters, warmup int) LatencyResult {
	if t.kind == FabricExtoll {
		return bench.ExtollPingPong(t.params, t.extollMode(m), size, iters, warmup)
	}
	return bench.IBPingPong(t.params, t.ibMode(m), size, iters, warmup)
}

// Stream measures unidirectional streaming bandwidth with `messages`
// puts of `size` bytes.
func (t *Testbed) Stream(m Mode, size, messages int) BandwidthResult {
	if t.kind == FabricExtoll {
		return bench.ExtollStream(t.params, t.extollMode(m), size, messages)
	}
	return bench.IBStream(t.params, t.ibMode(m), size, messages)
}

// MessageRate measures sustained 64-byte message rate over `pairs`
// connection pairs, each sending `perPair` messages.
func (t *Testbed) MessageRate(a Agents, pairs, perPair int) RateResult {
	if t.kind == FabricExtoll {
		return bench.ExtollMessageRate(t.params, a, pairs, perPair)
	}
	return bench.IBMessageRate(t.params, a, pairs, perPair)
}

// Cluster builds and returns a live simulated cluster for this testbed's
// fabric, for callers who want to run their own device/host code against
// the core API (see the haloexchange example).
func (t *Testbed) Cluster() *cluster.Testbed {
	if t.kind == FabricExtoll {
		return cluster.NewExtollPair(t.params)
	}
	return cluster.NewIBPair(t.params)
}

// NewRMA binds the EXTOLL put/get API to a node of a live cluster.
func NewRMA(n *cluster.Node) *core.RMA { return core.NewRMA(n) }

// NewVerbs binds the InfiniBand Verbs API to a node of a live cluster.
func NewVerbs(n *cluster.Node) *core.Verbs { return core.NewVerbs(n) }

// Experiments lists the paper's figures and tables; each can be
// regenerated with Run.
func Experiments() []string {
	var ids []string
	for _, r := range bench.Experiments() {
		ids = append(ids, r.ID)
	}
	return ids
}

// RunExperiment regenerates one figure or table by id ("fig1a" ...
// "table2") and returns its formatted text.
func RunExperiment(id string, p Params) (string, error) {
	r, ok := bench.Lookup(id)
	if !ok {
		return "", fmt.Errorf("putget: unknown experiment %q (have %v)", id, Experiments())
	}
	return r.Run(p), nil
}

// RunExperimentJSON is RunExperiment with machine-readable output for
// external plotting; not every experiment supports it.
func RunExperimentJSON(id string, p Params) (string, error) {
	r, ok := bench.Lookup(id)
	if !ok {
		return "", fmt.Errorf("putget: unknown experiment %q (have %v)", id, Experiments())
	}
	if r.RunJSON == nil {
		return "", fmt.Errorf("putget: experiment %q has no JSON form", id)
	}
	return r.RunJSON(p), nil
}
