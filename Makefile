# The exact tier-1 + lint gate CI runs. `make check` before pushing.

GO ?= go

.PHONY: build test lint check bench

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/putgetlint ./...

check: build test lint
	@echo "check: all gates green"

# Wall-clock simulator perf: times the kvserve serving cell and the
# message-rate sweep, writing BENCH_kvserve.json (events/sec, ns/op,
# allocs/op) for commit-over-commit tracking.
bench:
	$(GO) run ./cmd/putgetperf -o BENCH_kvserve.json
