# The exact tier-1 + lint gate CI runs. `make check` before pushing.

GO ?= go

.PHONY: build test race lint lint-json check bench

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# The full race-detector shard CI runs in its own job (slow: race
# builds take several times longer than plain `go test`).
race:
	$(GO) test -race ./...

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/putgetlint ./...

# Machine-readable findings (the stream CI converts to ::error
# annotations): exit 0 → [], exit 2 → findings, exit 1 → load error.
lint-json:
	$(GO) run ./cmd/putgetlint -json ./...

check: build test lint
	@echo "check: all gates green"

# Wall-clock simulator perf: times the kvserve serving cell and the
# message-rate sweep, writing BENCH_kvserve.json (events/sec, ns/op,
# allocs/op) for commit-over-commit tracking.
bench:
	$(GO) run ./cmd/putgetperf -o BENCH_kvserve.json
