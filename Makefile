# The exact tier-1 + lint gate CI runs. `make check` before pushing.

GO ?= go

.PHONY: build test lint check

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/putgetlint ./...

check: build test lint
	@echo "check: all gates green"
