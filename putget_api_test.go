package putget_test

import (
	"strings"
	"testing"

	"putget"
)

func TestModeAndFabricStrings(t *testing.T) {
	cases := map[string]string{
		putget.ModeDirect.String():         "direct",
		putget.ModePollOnGPU.String():      "pollOnGPU",
		putget.ModeHostAssisted.String():   "hostAssisted",
		putget.ModeHostControlled.String(): "hostControlled",
		putget.FabricExtoll.String():       "extoll",
		putget.FabricInfiniband.String():   "infiniband",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestTestbedPingPongBothFabrics(t *testing.T) {
	for _, tb := range []*putget.Testbed{
		putget.NewExtollTestbed(putget.DefaultParams()),
		putget.NewIBTestbed(putget.DefaultParams()),
	} {
		res := tb.PingPong(putget.ModeHostControlled, 256, 5, 1)
		if res.HalfRTT <= 0 {
			t.Fatalf("%v: nonpositive latency", tb.Kind())
		}
		if res.Size != 256 || res.Iters != 5 {
			t.Fatalf("%v: result metadata wrong: %+v", tb.Kind(), res)
		}
	}
}

func TestTestbedStreamAndRate(t *testing.T) {
	tb := putget.NewExtollTestbed(putget.DefaultParams())
	bw := tb.Stream(putget.ModeHostControlled, 64<<10, 8)
	if bw.BytesPerSec < 1e8 || bw.BytesPerSec > 2e9 {
		t.Fatalf("implausible bandwidth %.3g", bw.BytesPerSec)
	}
	rate := tb.MessageRate(putget.AgentsHostControlled, 4, 40)
	if rate.MsgsPerSec < 1e4 || rate.MsgsPerSec > 1e8 {
		t.Fatalf("implausible rate %.3g", rate.MsgsPerSec)
	}
	if rate.Pairs != 4 || rate.Messages != 160 {
		t.Fatalf("rate metadata wrong: %+v", rate)
	}
}

func TestDeterminism(t *testing.T) {
	// The same experiment must produce bit-identical results across runs.
	run := func() putget.Duration {
		tb := putget.NewExtollTestbed(putget.DefaultParams())
		return tb.PingPong(putget.ModeDirect, 1024, 5, 1).HalfRTT
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("nondeterministic result: %v vs %v", first, again)
		}
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := putget.RunExperiment("nope", putget.DefaultParams()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentsListComplete(t *testing.T) {
	ids := putget.Experiments()
	want := []string{"fig1a", "fig1b", "fig2", "table1", "fig3", "fig4a", "fig4b", "fig5", "table2"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("experiment %q missing from %v", w, ids)
		}
	}
}

func TestRunExperimentProducesTable(t *testing.T) {
	p := putget.DefaultParams()
	out, err := putget.RunExperiment("table1", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"sysmem reads", "instructions executed", "device memory"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("table1 output missing %q:\n%s", needle, out)
		}
	}
}

func TestASICParamsFaster(t *testing.T) {
	d, a := putget.DefaultParams(), putget.ASICParams()
	if a.ExtClock <= d.ExtClock {
		t.Fatal("ASIC clock not higher")
	}
	// Host-controlled EXTOLL latency must improve on the ASIC.
	fl := putget.NewExtollTestbed(d).PingPong(putget.ModeHostControlled, 16, 5, 1).HalfRTT
	al := putget.NewExtollTestbed(a).PingPong(putget.ModeHostControlled, 16, 5, 1).HalfRTT
	if al >= fl {
		t.Fatalf("ASIC latency %v not below FPGA %v", al, fl)
	}
}

func TestClusterAccessForAdvancedUse(t *testing.T) {
	tb := putget.NewExtollTestbed(putget.DefaultParams()).Cluster()
	if tb.A.GPU == nil || tb.B.Extoll == nil {
		t.Fatal("cluster incomplete")
	}
	rma := putget.NewRMA(tb.A)
	if rma == nil {
		t.Fatal("RMA binding failed")
	}
	ib := putget.NewIBTestbed(putget.DefaultParams()).Cluster()
	if putget.NewVerbs(ib.B) == nil {
		t.Fatal("Verbs binding failed")
	}
}

func TestShmemFacade(t *testing.T) {
	p := putget.DefaultParams()
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	w := putget.NewShmemWorld(p, 1<<20)
	defer w.Shutdown()
	if w.PE(0).Rank != 0 || w.PE(1).Rank != 1 {
		t.Fatal("PE ranks wrong")
	}
	off := w.Malloc(64)
	if err := w.PE(0).HostWrite(off, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgFacade(t *testing.T) {
	p := putget.DefaultParams()
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	ea, eb, tb := putget.NewMsgPair(p)
	defer tb.Shutdown()
	if ea == nil || eb == nil || tb.A == nil {
		t.Fatal("message pair incomplete")
	}
}
