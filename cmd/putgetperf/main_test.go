package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckBaselineFlagsLargeDrop(t *testing.T) {
	base := writeBaseline(t, `[
	  {"name":"kvserve/extoll","events_per_sec":1000000},
	  {"name":"engine/schedule","events_per_sec":500}
	]`)
	fresh := []entry{
		{Name: "kvserve/extoll", EventsPerSec: 800000}, // -20%: over the limit
		{Name: "engine/schedule", EventsPerSec: 490},   // -2%: fine
		{Name: "brand-new", EventsPerSec: 1},           // not in baseline: skipped
		{Name: "engine/timer"},                         // no events/s: skipped
	}
	bad := checkBaseline(fresh, base, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "kvserve/extoll") {
		t.Fatalf("want exactly the kvserve/extoll regression, got %v", bad)
	}
}

func TestCheckBaselinePassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t, `[{"name":"kvserve/ib","events_per_sec":1000000}]`)
	fresh := []entry{{Name: "kvserve/ib", EventsPerSec: 900000}} // -10%
	if bad := checkBaseline(fresh, base, 0.15); len(bad) != 0 {
		t.Fatalf("10%% drop under a 15%% limit must pass, got %v", bad)
	}
	// Improvements never trip the guard.
	fresh[0].EventsPerSec = 2000000
	if bad := checkBaseline(fresh, base, 0.15); len(bad) != 0 {
		t.Fatalf("improvement must pass, got %v", bad)
	}
}

func TestCheckBaselineFlagsAllocGrowth(t *testing.T) {
	base := writeBaseline(t, `[
	  {"name":"cluster/build/1024/lazy","allocs_per_op":4000},
	  {"name":"cluster/build/256/lazy","allocs_per_op":1000},
	  {"name":"kvserve/extoll","events_per_sec":1000000,"allocs_per_op":50000}
	]`)
	fresh := []entry{
		{Name: "cluster/build/1024/lazy", AllocsPerOp: 400000}, // 100x: the eager-revert signature
		{Name: "cluster/build/256/lazy", AllocsPerOp: 1100},    // +10%: fine
		{Name: "kvserve/extoll", EventsPerSec: 990000, AllocsPerOp: 48000},
	}
	bad := checkBaseline(fresh, base, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "cluster/build/1024/lazy") || !strings.Contains(bad[0], "allocs/op") {
		t.Fatalf("want exactly the 1024-node alloc regression, got %v", bad)
	}
}

func TestCheckBaselineReportsUnreadable(t *testing.T) {
	bad := checkBaseline(nil, filepath.Join(t.TempDir(), "missing.json"), 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "baseline unreadable") {
		t.Fatalf("missing baseline must be reported, got %v", bad)
	}
}
