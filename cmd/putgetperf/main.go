// Command putgetperf times the simulator itself — wall-clock cost, not
// virtual-time results — and emits a machine-readable BENCH_*.json so
// the perf trajectory of the engine can be tracked commit over commit.
//
//	putgetperf                      # writes BENCH_kvserve.json
//	putgetperf -o /tmp/bench.json
//
// Each entry runs one workload under testing.Benchmark: the kvserve
// serving cell on both fabrics (the heaviest multi-replica scenario, all
// simulation layers engaged) and the EXTOLL message-rate sweep cell from
// the paper evaluation. Virtual-event throughput (events/sec) is the
// headline: simulated events executed per wall-clock second, the number
// optimization work on internal/sim moves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/kv"
	"putget/internal/transport"
)

// entry is one benchmark's result.
type entry struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	WallNsPerOp int64  `json:"wall_ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// EventsPerOp is the virtual events one run executes; EventsPerSec
	// divides it by wall time. Zero for workloads that don't report it.
	EventsPerOp  uint64  `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func run(name string, events func() uint64) entry {
	var ev uint64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev = events()
		}
	})
	e := entry{
		Name:        name,
		Iterations:  res.N,
		WallNsPerOp: res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		EventsPerOp: ev,
	}
	if ev > 0 && res.NsPerOp() > 0 {
		e.EventsPerSec = float64(ev) / (float64(res.NsPerOp()) / 1e9)
	}
	return e
}

func main() {
	var (
		out  = flag.String("o", "BENCH_kvserve.json", "output file")
		seed = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	p := cluster.Default()
	p.FaultInject = true
	p.FaultSeed = *seed
	cfg := kv.DefaultConfig(*seed)

	entries := []entry{
		run("kvserve/extoll", func() uint64 {
			return kv.Run(transport.KindExtoll, p, cfg).Events
		}),
		run("kvserve/ib", func() uint64 {
			return kv.Run(transport.KindIB, p, cfg).Events
		}),
		run("msgrate/extoll", func() uint64 {
			bench.ExtollMessageRate(cluster.Default(), bench.RateHostControlled, 32, 80)
			return 0
		}),
	}

	doc, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "putgetperf: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "putgetperf: %v\n", err)
		os.Exit(1)
	}
	for _, e := range entries {
		fmt.Printf("%-16s %10d ns/op %9d allocs/op", e.Name, e.WallNsPerOp, e.AllocsPerOp)
		if e.EventsPerSec > 0 {
			fmt.Printf(" %12.0f events/s", e.EventsPerSec)
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s\n", *out)
}
