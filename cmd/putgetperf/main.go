// Command putgetperf times the simulator itself — wall-clock cost, not
// virtual-time results — and emits a machine-readable BENCH_*.json so
// the perf trajectory of the engine can be tracked commit over commit.
//
//	putgetperf                      # writes BENCH_kvserve.json
//	putgetperf -o /tmp/bench.json
//	putgetperf -o /tmp/bench.json -baseline BENCH_kvserve.json
//	                                # exit 1 on >15% events/s drop
//
// Each entry runs one workload under testing.Benchmark: three engine
// microbenchmarks isolating the hot primitives (event schedule+run,
// timer arm/cancel churn, process handoff), the kvserve serving cell on
// both fabrics (the heaviest multi-replica scenario, all simulation
// layers engaged), the EXTOLL message-rate sweep cell from the paper
// evaluation, and the construction microbenchmarks (cluster build
// eager-vs-lazy at 256/1024 nodes, team connect) that defend the
// lazy-build refactor. Virtual-event throughput (events/sec) is the
// headline for simulation workloads: simulated events executed per
// wall-clock second, the number optimization work on internal/sim
// moves. Construction entries are guarded by allocs/op instead — the
// machine-independent signature of how much of the cluster a build
// touches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/kv"
	"putget/internal/shmem"
	"putget/internal/sim"
	"putget/internal/topo"
	"putget/internal/transport"
)

// entry is one benchmark's result.
type entry struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	WallNsPerOp int64  `json:"wall_ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// EventsPerOp is the virtual events one run executes; EventsPerSec
	// divides it by wall time. Zero for workloads that don't report it.
	EventsPerOp  uint64  `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func run(name string, events func() uint64) entry {
	var ev uint64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev = events()
		}
	})
	return finish(name, res, ev)
}

// runB is run for benchmarks that need the b.N loop themselves (the
// engine microbenchmarks amortize one engine across all iterations);
// the callback returns the events executed per iteration.
func runB(name string, body func(b *testing.B) uint64) entry {
	var ev uint64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		ev = body(b)
	})
	return finish(name, res, ev)
}

func finish(name string, res testing.BenchmarkResult, ev uint64) entry {
	e := entry{
		Name:        name,
		Iterations:  res.N,
		WallNsPerOp: res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		EventsPerOp: ev,
	}
	if ev > 0 && res.NsPerOp() > 0 {
		e.EventsPerSec = float64(ev) / (float64(res.NsPerOp()) / 1e9)
	}
	return e
}

// benchSchedule measures the bare schedule+dispatch path: one event
// armed and drained per op on a shared engine. This is the floor every
// other number sits on; it must stay allocation-free.
func benchSchedule(b *testing.B) uint64 {
	e := sim.NewEngine()
	defer e.Shutdown()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, fn)
		e.Run()
	}
	b.StopTimer()
	return 1
}

// benchTimer measures cancellable-timer churn: arm two, cancel one,
// drain the survivor — the KV coordinator's deadline pattern.
func benchTimer(b *testing.B) uint64 {
	e := sim.NewEngine()
	defer e.Shutdown()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := e.AfterTimer(1, fn)
		//putget:allow timerleak -- benchmark measures timer churn; the survivor is drained by e.Run below
		e.AfterTimer(2, fn)
		t1.Cancel()
		e.Run()
	}
	b.StopTimer()
	return 1
}

// benchHandoff measures one full engine→proc→engine control transfer:
// a resident process sleeps one tick per op, so each RunUntil is wake +
// park across the goroutine boundary.
func benchHandoff(b *testing.B) uint64 {
	e := sim.NewEngine()
	e.Spawn("sleeper", func(p *sim.Proc) {
		for {
			p.Sleep(1)
		}
	})
	e.RunUntil(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(sim.Time(i + 1))
	}
	b.StopTimer()
	e.Shutdown()
	return 1
}

// checkBaseline compares fresh numbers against a committed baseline file
// and reports every regression beyond maxDrop (a fraction, e.g. 0.15):
// an events/sec drop, or an allocs/op increase. Wall-clock ns/op is too
// machine-sensitive to gate on, but virtual-event throughput on the same
// machine class tracks real engine regressions, and allocs/op is
// deterministic — reverting lazy construction multiplies the build
// entries' allocations a hundredfold, which this guard turns into a CI
// failure. Entries missing from either side are skipped.
func checkBaseline(fresh []entry, baselinePath string, maxDrop float64) []string {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return []string{fmt.Sprintf("baseline unreadable: %v", err)}
	}
	var base []entry
	if err := json.Unmarshal(data, &base); err != nil {
		return []string{fmt.Sprintf("baseline unparsable: %v", err)}
	}
	byName := make(map[string]entry, len(base))
	for _, e := range base {
		byName[e.Name] = e
	}
	var bad []string
	for _, e := range fresh {
		b, ok := byName[e.Name]
		if !ok {
			continue
		}
		if b.EventsPerSec > 0 && e.EventsPerSec > 0 {
			if drop := 1 - e.EventsPerSec/b.EventsPerSec; drop > maxDrop {
				bad = append(bad, fmt.Sprintf("%s: %.0f -> %.0f events/s (-%.1f%%, limit %.0f%%)",
					e.Name, b.EventsPerSec, e.EventsPerSec, drop*100, maxDrop*100))
			}
		}
		if b.AllocsPerOp > 0 && e.AllocsPerOp > b.AllocsPerOp {
			if grow := float64(e.AllocsPerOp)/float64(b.AllocsPerOp) - 1; grow > maxDrop {
				bad = append(bad, fmt.Sprintf("%s: %d -> %d allocs/op (+%.1f%%, limit %.0f%%)",
					e.Name, b.AllocsPerOp, e.AllocsPerOp, grow*100, maxDrop*100))
			}
		}
	}
	return bad
}

func main() {
	var (
		out      = flag.String("o", "BENCH_kvserve.json", "output file")
		seed     = flag.Uint64("seed", 42, "workload seed")
		baseline = flag.String("baseline", "", "committed BENCH_*.json to guard against; exit 1 on events/s regression")
		maxDrop  = flag.Float64("max-drop", 0.15, "events/s drop tolerated against -baseline (fraction)")
	)
	flag.Parse()

	p := cluster.Default()
	p.FaultInject = true
	p.FaultSeed = *seed
	cfg := kv.DefaultConfig(*seed)

	// Cluster-scale params: shrink per-node footprints so a 1024-node
	// build fits, as the scaling experiment does.
	cp := cluster.Default()
	cp.GPUDevMemSize = 64 << 20
	cp.HostRAMSize = 96 << 20
	cp.ExtPorts = 72
	cp.ExtNotifEntries = 128
	// buildCluster constructs an n-node cluster; eager additionally
	// touches every node, paying the full per-node materialization the
	// pre-lazy constructor always paid.
	buildCluster := func(n int, eager bool) uint64 {
		c := cluster.NewClusterOn(cluster.FabricExtoll, topo.Spec{Kind: topo.FatTree}, n, cp)
		if eager {
			for i := 0; i < n; i++ {
				c.Node(i)
			}
		}
		c.Shutdown()
		return 0
	}
	// teamConnect builds a 64-rank world, carves a 16-rank strided team
	// and plans a ring allreduce on it: the full lazy path from empty
	// world to a wired sub-team connection graph.
	teamConnect := func() uint64 {
		w := shmem.NewWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 64, cp, 1<<20)
		team := w.Root().Strided(0, 4, 16)
		vec := w.Malloc(8 * 16)
		team.NewAllReduce(shmem.Ring, vec, 16)
		w.Shutdown()
		return 0
	}

	entries := []entry{
		runB("engine/schedule", benchSchedule),
		runB("engine/timer", benchTimer),
		runB("engine/handoff", benchHandoff),
		run("kvserve/extoll", func() uint64 {
			return kv.Run(transport.KindExtoll, p, cfg).Events
		}),
		run("kvserve/ib", func() uint64 {
			return kv.Run(transport.KindIB, p, cfg).Events
		}),
		run("msgrate/extoll", func() uint64 {
			return bench.ExtollMessageRate(cluster.Default(), bench.RateHostControlled, 32, 80).Events
		}),
		run("cluster/build/256/lazy", func() uint64 { return buildCluster(256, false) }),
		run("cluster/build/256/eager", func() uint64 { return buildCluster(256, true) }),
		run("cluster/build/1024/lazy", func() uint64 { return buildCluster(1024, false) }),
		run("cluster/build/1024/eager", func() uint64 { return buildCluster(1024, true) }),
		run("team/connect/16of64", teamConnect),
	}

	doc, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "putgetperf: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "putgetperf: %v\n", err)
		os.Exit(1)
	}
	for _, e := range entries {
		fmt.Printf("%-24s %11d ns/op %9d allocs/op", e.Name, e.WallNsPerOp, e.AllocsPerOp)
		if e.EventsPerSec > 0 {
			fmt.Printf(" %12.0f events/s", e.EventsPerSec)
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s\n", *out)

	if *baseline != "" {
		if bad := checkBaseline(entries, *baseline, *maxDrop); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "putgetperf: events/s regression vs %s:\n", *baseline)
			for _, line := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", line)
			}
			os.Exit(1)
		}
		fmt.Printf("baseline %s: within %.0f%% on all events/s entries\n", *baseline, *maxDrop*100)
	}
}
