// Command putgetlint statically enforces the simulator's determinism
// and engine-affinity invariants (see internal/analysis):
//
//	nowalltime      no wall-clock time in sim-domain packages
//	noglobalrand    no math/rand / crypto/rand in sim-domain packages
//	maporder        no map iteration with order-dependent effects
//	engineaffinity  no raw goroutines / captured engine handles
//	boundedwait     no unbounded blocking waits outside tests
//	directive       every //putget:allow names a real analyzer + reason
//
// Two modes:
//
//	putgetlint ./...                       standalone, like a linter
//	go vet -vettool=$(which putgetlint) ./...   as a vet tool
//
// Standalone exit status: 0 clean, 2 findings, 1 operational error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"putget/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("putgetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: putgetlint [packages]\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which putgetlint) [packages]\n\n")
		fmt.Fprintf(stderr, "Analyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with: //putget:allow <analyzer> -- <reason>\n")
	}
	version := fs.String("V", "", "print version and exit (vet tool protocol)")
	dir := fs.String("C", ".", "run as if started in `dir`")
	// Vet tool protocol: cmd/go probes `tool -flags` for the JSON list
	// of analyzer flags the tool accepts. putgetlint takes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *version != "" {
		return printVersion(*version, stdout, stderr)
	}

	rest := fs.Args()
	// Vet tool protocol: a single *.cfg argument names a unit config.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnitchecker(rest[0], analysis.All(), stderr)
	}

	diags, err := analysis.Run(*dir, rest, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "putgetlint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// printVersion implements the -V=full handshake cmd/go uses to identify
// external tools for its action cache: name, "version", and a build ID
// derived from the binary's own contents.
func printVersion(mode string, stdout, stderr io.Writer) int {
	if mode != "full" {
		fmt.Fprintf(stderr, "putgetlint: unsupported flag value: -V=%s\n", mode)
		return 1
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "putgetlint version devel buildID=%x\n", h.Sum(nil))
	return 0
}
