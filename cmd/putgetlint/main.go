// Command putgetlint statically enforces the simulator's determinism,
// engine-affinity, and protocol invariants (see internal/analysis):
//
//	nowalltime      no wall-clock time in sim-domain packages
//	noglobalrand    no math/rand / crypto/rand in sim-domain packages
//	maporder        no map iteration with order-dependent effects
//	engineaffinity  no raw goroutines / captured engine handles
//	boundedwait     no unbounded blocking waits outside tests
//	timerleak       no AtTimer/AfterTimer handle dropped un-Cancelled
//	spanbalance     no SpanOpen without SpanClose on every path
//	flagorder       no flag/imm put posted before the bulk put it signals
//	hotalloc        no allocations in //putget:hot functions
//	directive       every //putget:allow names a real analyzer + reason,
//	                and suppresses at least one finding (stale-allow)
//
// Two modes:
//
//	putgetlint ./...                       standalone, like a linter
//	go vet -vettool=$(which putgetlint) ./...   as a vet tool
//
// Exit-code contract, identical in both modes and with or without
// -json: 0 clean, 2 findings, 1 operational error (bad pattern, type
// error, unreadable unit config). With -json the standalone mode writes
// a JSON array of findings to stdout — always valid JSON on exit 0
// (`[]`) and exit 2; nothing on stdout on exit 1, when the error goes
// to stderr as usual.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"putget/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("putgetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: putgetlint [-json] [-C dir] [packages]\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which putgetlint) [packages]\n\n")
		fmt.Fprintf(stderr, "Exit status (both modes): 0 clean, 2 findings, 1 operational error.\n")
		fmt.Fprintf(stderr, "-json writes findings as a JSON array on stdout ([] when clean).\n\n")
		fmt.Fprintf(stderr, "Analyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with: //putget:allow <analyzer> -- <reason>\n")
	}
	version := fs.String("V", "", "print version and exit (vet tool protocol)")
	dir := fs.String("C", ".", "run as if started in `dir`")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	// Vet tool protocol: cmd/go probes `tool -flags` for the JSON list
	// of analyzer flags the tool accepts. putgetlint takes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *version != "" {
		return printVersion(*version, stdout, stderr)
	}

	rest := fs.Args()
	// Vet tool protocol: a single *.cfg argument names a unit config.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnitchecker(rest[0], analysis.All(), stderr)
	}

	diags, err := analysis.Run(*dir, rest, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	if *jsonOut {
		if err := writeJSON(stdout, *dir, diags); err != nil {
			fmt.Fprintf(stderr, "putgetlint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "putgetlint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// jsonFinding is one finding in -json output. File is relative to the
// -C directory when the finding lies under it, so CI can map it onto
// repository paths for inline annotations.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as one JSON array — `[]` when clean, so
// downstream tooling can always parse stdout on exit 0 and 2.
func writeJSON(w io.Writer, dir string, diags []analysis.Diagnostic) error {
	base, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printVersion implements the -V=full handshake cmd/go uses to identify
// external tools for its action cache: name, "version", and a build ID
// derived from the binary's own contents.
func printVersion(mode string, stdout, stderr io.Writer) int {
	if mode != "full" {
		fmt.Fprintf(stderr, "putgetlint: unsupported flag value: -V=%s\n", mode)
		return 1
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "putgetlint version devel buildID=%x\n", h.Sum(nil))
	return 0
}
