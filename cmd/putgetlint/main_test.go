package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureModule = "../../internal/analysis/testdata/src/putget"

// TestRepoIsClean is the acceptance smoke: putgetlint ./... exits 0 on
// the repository itself, so every invariant either holds or carries a
// written justification.
func TestRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("putgetlint ./... on the repo: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestFixturesAreDirty: the seeded fixture module must produce findings
// and the findings exit code.
func TestFixturesAreDirty(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", fixtureModule, "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("putgetlint on fixtures: exit %d, want 2\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	for _, want := range []string{
		"nowalltime", "noglobalrand", "maporder", "engineaffinity",
		"boundedwait", "timerleak", "spanbalance", "flagorder",
		"hotalloc", "directive",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fixture findings missing analyzer %s:\n%s", want, out.String())
		}
	}
}

// TestJSONExitContract pins the -json exit-code contract: findings → 2
// with a parseable JSON array on stdout, clean → 0 with `[]`, load
// error → 1 with nothing on stdout.
func TestJSONExitContract(t *testing.T) {
	// Findings: exit 2, valid JSON array with the expected fields.
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-C", fixtureModule, "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("-json on fixtures: exit %d, want 2\nstderr:\n%s", code, errb.String())
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json on seeded fixtures produced an empty array")
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line <= 0 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding file %q not relative to -C dir", f.File)
		}
	}

	// Clean: exit 0 and `[]`, so stdout is always parseable JSON.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", "-C", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("-json on the repo: exit %d, want 0\nstderr:\n%s", code, errb.String())
	}
	var empty []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Errorf("-json clean run: want [], got %q (err %v)", out.String(), err)
	}

	// Operational error: exit 1, nothing on stdout.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", "./does/not/exist/..."}, &out, &errb); code != 1 {
		t.Fatalf("-json bad pattern: exit %d, want 1", code)
	}
	if out.Len() != 0 {
		t.Errorf("-json exit 1 wrote to stdout: %q", out.String())
	}
}

// TestBadPatternIsOperationalError: an unresolvable pattern is exit 1
// (operational), distinct from exit 2 (findings).
func TestBadPatternIsOperationalError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does/not/exist/..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
}

// TestVersionHandshake: the -V=full protocol cmd/go uses to fingerprint
// vet tools for its action cache.
func TestVersionHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full: exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "putgetlint version ") || !strings.Contains(out.String(), "buildID=") {
		t.Errorf("-V=full output %q lacks name/buildID", out.String())
	}
	if code := run([]string{"-V=short"}, &out, &errb); code != 1 {
		t.Error("-V=short should be rejected")
	}
}

// TestVetToolProtocol builds the real binary and drives it through
// `go vet -vettool` over the fixture module: the unitchecker path must
// report the seeded violations and fail the vet run.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "putgetlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building putgetlint: %v\n%s", err, out)
	}

	abs, err := filepath.Abs(bin)
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+abs, "./...")
	vet.Dir = fixtureModule
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on seeded fixtures passed; want failure\n%s", out)
	}
	for _, want := range []string{"nowalltime", "boundedwait"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %s findings:\n%s", want, out)
		}
	}

	// And the repo itself is clean through the same path.
	vetClean := exec.Command("go", "vet", "-vettool="+abs, "./...")
	vetClean.Dir = "../.."
	if out, err := vetClean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on the repo: %v\n%s", err, out)
	}

	// Exit-code contract in vet mode: an unreadable unit config is an
	// operational error (1), not findings (2).
	badCfg := exec.Command(abs, filepath.Join(t.TempDir(), "missing.cfg"))
	if err := badCfg.Run(); badCfg.ProcessState.ExitCode() != 1 {
		t.Errorf("vet mode with unreadable cfg: exit %d (err %v), want 1",
			badCfg.ProcessState.ExitCode(), err)
	}
}
