// Command putgetsweep runs parameter-sensitivity studies: it sweeps one
// testbed parameter across a list of values and reports a headline metric
// for each, quantifying how robust the paper's conclusions are to the
// calibration choices documented in internal/cluster/params.go.
//
//	putgetsweep -param gpu-issue -values 8,14,18,24,32 -metric lat1k
//	putgetsweep -param p2p-small -values 0.5e9,1.05e9,3e9 -metric bw256k
//	putgetsweep -param pcie-slots -values 1,2,4,8,16 -metric rate32
//	putgetsweep -param fault-drop -values 0,0.01,0.05 -parallel 4
//	putgetsweep -list
//
// Each swept value is one cell of the parallel experiment runner: it
// builds its own isolated simulation, so cells shard across -parallel
// workers while the result table keeps its deterministic value order
// (stdout is byte-identical for any worker count). A value whose
// measurement panics fails only its own row.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/runner"
	"putget/internal/sim"
)

// knob applies one value of a swept parameter.
type knob struct {
	name string
	desc string
	set  func(p *cluster.Params, v float64)
}

var knobs = []knob{
	{"gpu-issue", "GPU per-instruction issue cost [ns]",
		func(p *cluster.Params, v float64) { p.GPUIssue = sim.Nanoseconds(v) }},
	{"gpu-poll-stall", "GPU spin-loop stall per probe [ns]",
		func(p *cluster.Params, v float64) { p.GPUPollStall = sim.Nanoseconds(v) }},
	{"pcie-slots", "outstanding GPU PCIe operations",
		func(p *cluster.Params, v float64) { p.GPUPCIeSlots = int(v) }},
	{"p2p-small", "P2P read bandwidth below the collapse [B/s]",
		func(p *cluster.Params, v float64) { p.P2PReadSmall = v }},
	{"p2p-large", "P2P read bandwidth above the collapse [B/s]",
		func(p *cluster.Params, v float64) { p.P2PReadLarge = v }},
	{"ext-req-cycles", "EXTOLL requester cycles per WR",
		func(p *cluster.Params, v float64) { p.ExtReqCycles = int(v) }},
	{"ext-wire-bw", "EXTOLL cable bandwidth [B/s]",
		func(p *cluster.Params, v float64) { p.ExtWireBW = v }},
	{"ib-wire-bw", "InfiniBand cable bandwidth [B/s]",
		func(p *cluster.Params, v float64) { p.IBWireBW = v }},
	{"host-mem-lat", "host memory latency [ns]",
		func(p *cluster.Params, v float64) { p.HostMemLat = sim.Nanoseconds(v) }},
	{"fault-drop", "wire loss probability (enables fault injection; rates near 1 kill the link and blocking benchmarks never finish)",
		func(p *cluster.Params, v float64) { p.FaultInject = true; p.FaultSeed = 42; p.FaultDropRate = v }},
	{"fault-delay", "max extra wire delay [ns] (enables fault injection)",
		func(p *cluster.Params, v float64) {
			p.FaultInject = true
			p.FaultSeed = 42
			p.FaultDelayMax = sim.Nanoseconds(v)
		}},
	{"wire-depth-cap", "wire egress queue bound [packets] (0 = unbounded)",
		func(p *cluster.Params, v float64) { p.WireDepthCap = int(v) }},
}

// metric evaluates one headline number under a parameter set.
type metric struct {
	name string
	desc string
	unit string
	eval func(p cluster.Params) float64
}

var metrics = []metric{
	{"lat1k", "EXTOLL dev2dev-direct 1KiB one-way latency", "us",
		func(p cluster.Params) float64 {
			return bench.ExtollPingPong(p, bench.ExtDirect, 1024, 10, 2).HalfRTT.Microseconds()
		}},
	{"lat1k-host", "EXTOLL host-controlled 1KiB one-way latency", "us",
		func(p cluster.Params) float64 {
			return bench.ExtollPingPong(p, bench.ExtHostControlled, 1024, 10, 2).HalfRTT.Microseconds()
		}},
	{"bw256k", "EXTOLL host-controlled 256KiB bandwidth", "MB/s",
		func(p cluster.Params) float64 {
			return bench.ExtollStream(p, bench.ExtHostControlled, 256<<10, 16).BytesPerSec / 1e6
		}},
	{"bw4m", "EXTOLL host-controlled 4MiB bandwidth (collapsed)", "MB/s",
		func(p cluster.Params) float64 {
			return bench.ExtollStream(p, bench.ExtHostControlled, 4<<20, 6).BytesPerSec / 1e6
		}},
	{"rate32", "EXTOLL blocks message rate at 32 pairs", "msgs/s",
		func(p cluster.Params) float64 {
			return bench.ExtollMessageRate(p, bench.RateBlocks, 32, 80).MsgsPerSec
		}},
	{"ibrate32", "IB blocks message rate at 32 QPs", "msgs/s",
		func(p cluster.Params) float64 {
			return bench.IBMessageRate(p, bench.RateBlocks, 32, 80).MsgsPerSec
		}},
	{"iblat16", "IB bufOnGPU 16B one-way latency", "us",
		func(p cluster.Params) float64 {
			return bench.IBPingPong(p, bench.IBBufOnGPU, 16, 10, 2).HalfRTT.Microseconds()
		}},
	{"iblat1k-host", "IB host-controlled 1KiB one-way latency", "us",
		func(p cluster.Params) float64 {
			return bench.IBPingPong(p, bench.IBHostControlled, 1024, 10, 2).HalfRTT.Microseconds()
		}},
	{"retx1k", "retransmissions during EXTOLL host-controlled 1KiB ping-pong", "count",
		func(p cluster.Params) float64 {
			res := bench.ExtollPingPong(p, bench.ExtHostControlled, 1024, 10, 2)
			if res.Rel == nil {
				return 0
			}
			return float64(res.Rel.Retransmits)
		}},
}

func main() {
	var (
		list     = flag.Bool("list", false, "list parameters and metrics")
		param    = flag.String("param", "", "parameter to sweep")
		values   = flag.String("values", "", "comma-separated values")
		metricID = flag.String("metric", "lat1k", "metric to evaluate")
		asic     = flag.Bool("asic", false, "start from the ASIC profile")
		parallel = flag.Int("parallel", 0, "sweep-harness workers (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	if *list || *param == "" {
		fmt.Println("parameters:")
		for _, k := range knobs {
			fmt.Printf("  %-16s %s\n", k.name, k.desc)
		}
		fmt.Println("metrics:")
		for _, m := range metrics {
			fmt.Printf("  %-16s %s [%s]\n", m.name, m.desc, m.unit)
		}
		if *param == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var k *knob
	for i := range knobs {
		if knobs[i].name == *param {
			k = &knobs[i]
		}
	}
	if k == nil {
		fmt.Fprintf(os.Stderr, "unknown parameter %q (use -list)\n", *param)
		os.Exit(1)
	}
	var m *metric
	for i := range metrics {
		if metrics[i].name == *metricID {
			m = &metrics[i]
		}
	}
	if m == nil {
		fmt.Fprintf(os.Stderr, "unknown metric %q (use -list)\n", *metricID)
		os.Exit(1)
	}

	var vs []float64
	for _, field := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", field, err)
			os.Exit(1)
		}
		vs = append(vs, v)
	}

	// Reject sweeps into nonsensical parameter space up front, before any
	// simulation time is spent (a zero ring size or negative rate would
	// otherwise surface as a panic deep inside a worker cell).
	for _, v := range vs {
		p := cluster.Default()
		if *asic {
			p = cluster.ASIC()
		}
		k.set(&p, v)
		if err := p.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "putgetsweep: %s=%g: %v\n", k.name, v, err)
			os.Exit(1)
		}
	}

	cells := make([]runner.Cell, len(vs))
	for i, v := range vs {
		v := v
		cells[i] = runner.Cell{Name: fmt.Sprintf("%s=%g", k.name, v), Run: func() string {
			p := cluster.Default()
			if *asic {
				p = cluster.ASIC()
			}
			p.Parallel = 1 // one worker per value cell; the pool is the outer level
			k.set(&p, v)
			return fmt.Sprintf("%14g %14.4g", v, m.eval(p))
		}}
	}
	results := runner.Run(cells, runner.Options{
		Parallel: *parallel,
		Progress: func(r runner.Result) {
			status := "done"
			if r.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%s %s in %.1fs]\n", r.Name, status, r.Elapsed.Seconds())
		},
	})

	fmt.Printf("sweep of %s (%s) against %s [%s]\n\n", k.name, k.desc, m.desc, m.unit)
	fmt.Printf("%14s %14s\n", k.name, m.unit)
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("%14g %14s\n", vs[r.Index], "ERROR")
			fmt.Fprintf(os.Stderr, "putgetsweep: %s: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Println(r.Output)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "putgetsweep: %d/%d values failed\n", failed, len(results))
		os.Exit(1)
	}
}
