// Command putgettrace replays a single GPU-initiated put and prints the
// virtual-time event trace — every PCIe delivery, NIC pipeline stage and
// notification — for teaching and debugging the models.
//
//	putgettrace                 # EXTOLL put, 1KiB
//	putgettrace -fabric ib      # InfiniBand RDMA write
//	putgettrace -size 65536
//	putgettrace -json           # machine-readable events
//	putgettrace -filter a.rma   # only the origin NIC's events
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/sim"
	"putget/internal/trace"
)

var (
	jsonOut   = flag.Bool("json", false, "emit the trace as JSON")
	catFilter = flag.String("filter", "", "only show events from this component prefix")
)

func main() {
	fabric := flag.String("fabric", "extoll", "extoll or ib")
	size := flag.Int("size", 1024, "payload size in bytes")
	flag.Parse()

	p := cluster.Default()
	p.GPUDevMemSize = uint64(2*(*size)) + (64 << 20)
	p.HostRAMSize = 96 << 20

	switch *fabric {
	case "extoll":
		traceExtoll(p, *size)
	case "ib":
		traceIB(p, *size)
	default:
		fmt.Println("unknown fabric; use extoll or ib")
	}
}

func attachTrace(e *sim.Engine) *trace.Recorder {
	return trace.Attach(e, 100000)
}

func dump(r *trace.Recorder) {
	evs := r.Events()
	if *catFilter != "" {
		evs = r.Filter(*catFilter)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(evs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, ev := range evs {
		fmt.Printf("%12v  %s\n", ev.At, ev.Msg)
	}
}

func traceExtoll(p cluster.Params, size int) {
	tb := cluster.NewExtollPair(p)
	rec := attachTrace(tb.E)
	ra, rb := core.NewRMA(tb.A), core.NewRMA(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcN := ra.Register(src, uint64(size))
	dstN := rb.Register(dst, uint64(size))
	ra.OpenPort(0)
	rb.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)

	fmt.Printf("== EXTOLL: GPU-initiated put of %d bytes, dev2dev-direct ==\n", size)
	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		tb.E.Tracef("gpu: kernel starts, posting WR")
		ra.DevPut(w, 0, srcN, dstN, size, extoll.FlagReqNotif|extoll.FlagCompNotif)
		tb.E.Tracef("gpu: WR posted, polling requester notification")
		ra.DevWaitNotif(w, 0, extoll.ClassRequester)
		tb.E.Tracef("gpu: requester notification consumed")
	})
	tb.E.Run()
	if !done.Done() {
		fmt.Println("ERROR: kernel did not complete")
		return
	}
	dump(rec)
	fmt.Printf("== put complete at %v ==\n", tb.E.Now())
}

func traceIB(p cluster.Params, size int) {
	tb := cluster.NewIBPair(p)
	rec := attachTrace(tb.E)
	va, vb := core.NewVerbs(tb.A), core.NewVerbs(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcMR := va.RegMR(src, uint64(size))
	dstMR := vb.RegMR(dst, uint64(size))
	qa := va.CreateQP(64, 16, 64, false)
	qb := vb.CreateQP(64, 16, 64, false)
	core.ConnectVQPs(qa, qb)

	fmt.Printf("== InfiniBand: GPU-initiated RDMA write of %d bytes, queues on host ==\n", size)
	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		tb.E.Tracef("gpu: kernel starts, building WQE (%d-instruction post path)", 442)
		va.DevPostSend(w, qa, ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
			LAddr: uint64(src), LKey: srcMR.LKey, Length: size,
			RAddr: uint64(dst), RKey: dstMR.RKey,
		})
		tb.E.Tracef("gpu: doorbell rung, polling send CQ")
		va.DevPollCQ(w, qa.SendCQ)
		tb.E.Tracef("gpu: completion consumed")
	})
	tb.E.Run()
	if !done.Done() {
		fmt.Println("ERROR: kernel did not complete")
		return
	}
	dump(rec)
	fmt.Printf("== write complete at %v ==\n", tb.E.Now())
}
