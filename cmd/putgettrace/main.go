// Command putgettrace replays a single GPU-initiated put and prints the
// virtual-time event trace — every PCIe delivery, NIC pipeline stage and
// notification — for teaching and debugging the models.
//
//	putgettrace                 # EXTOLL put, 1KiB
//	putgettrace -fabric ib      # InfiniBand RDMA write
//	putgettrace -size 65536
//	putgettrace -size 64,1024,65536 -parallel 3  # one trace per size
//	putgettrace -json           # machine-readable events
//	putgettrace -filter a.rma   # only the origin NIC's events
//
// With a comma-separated -size list, each size replays in its own
// isolated simulation; the replays shard over -parallel workers and the
// traces print in the listed order, byte-identical for any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/runner"
	"putget/internal/sim"
	"putget/internal/trace"
)

var (
	jsonOut   = flag.Bool("json", false, "emit the trace as JSON")
	catFilter = flag.String("filter", "", "only show events from this component prefix")
)

func main() {
	fabric := flag.String("fabric", "extoll", "extoll or ib")
	sizes := flag.String("size", "1024", "payload size in bytes (comma-separated list replays one trace per size)")
	parallel := flag.Int("parallel", 0, "trace-harness workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	var trc func(p cluster.Params, size int) string
	switch *fabric {
	case "extoll":
		trc = traceExtoll
	case "ib":
		trc = traceIB
	default:
		fmt.Fprintln(os.Stderr, "unknown fabric; use extoll or ib")
		os.Exit(1)
	}

	var sz []int
	for _, field := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", field)
			os.Exit(1)
		}
		sz = append(sz, v)
	}

	cells := make([]runner.Cell, len(sz))
	for i, size := range sz {
		size := size
		cells[i] = runner.Cell{Name: fmt.Sprintf("%s/%dB", *fabric, size), Run: func() string {
			p := cluster.Default()
			p.GPUDevMemSize = uint64(2*size) + (64 << 20)
			p.HostRAMSize = 96 << 20
			return trc(p, size)
		}}
	}
	results := runner.Run(cells, runner.Options{
		Parallel: *parallel,
		Progress: func(r runner.Result) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "[%s FAILED after %.1fs]\n", r.Name, r.Elapsed.Seconds())
			}
		},
	})

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "putgettrace: %s: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Print(r.Output)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func attachTrace(e *sim.Engine) *trace.Recorder {
	return trace.Attach(e, 100000)
}

// dump renders the recorded events; traces are returned as strings so the
// sharded harness can merge them in order instead of interleaving writes.
func dump(r *trace.Recorder) string {
	evs := r.Events()
	if *catFilter != "" {
		evs = r.Filter(*catFilter)
	}
	var b strings.Builder
	if *jsonOut {
		enc := json.NewEncoder(&b)
		enc.SetIndent("", "  ")
		if err := enc.Encode(evs); err != nil {
			panic(fmt.Sprintf("trace encode: %v", err))
		}
		return b.String()
	}
	for _, ev := range evs {
		fmt.Fprintf(&b, "%12v  %s\n", ev.At, ev.Msg)
	}
	return b.String()
}

func traceExtoll(p cluster.Params, size int) string {
	tb := cluster.NewExtollPair(p)
	defer tb.Shutdown()
	rec := attachTrace(tb.E)
	ra, rb := core.NewRMA(tb.A), core.NewRMA(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcN := ra.Register(src, uint64(size))
	dstN := rb.Register(dst, uint64(size))
	ra.OpenPort(0)
	rb.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)

	var b strings.Builder
	fmt.Fprintf(&b, "== EXTOLL: GPU-initiated put of %d bytes, dev2dev-direct ==\n", size)
	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		tb.E.Tracef("gpu: kernel starts, posting WR")
		ra.DevPut(w, 0, srcN, dstN, size, extoll.FlagReqNotif|extoll.FlagCompNotif)
		tb.E.Tracef("gpu: WR posted, polling requester notification")
		ra.DevWaitNotif(w, 0, extoll.ClassRequester)
		tb.E.Tracef("gpu: requester notification consumed")
	})
	tb.E.Run()
	if !done.Done() {
		panic("putgettrace: EXTOLL kernel did not complete")
	}
	b.WriteString(dump(rec))
	fmt.Fprintf(&b, "== put complete at %v ==\n", tb.E.Now())
	return b.String()
}

func traceIB(p cluster.Params, size int) string {
	tb := cluster.NewIBPair(p)
	defer tb.Shutdown()
	rec := attachTrace(tb.E)
	va, vb := core.NewVerbs(tb.A), core.NewVerbs(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcMR := va.RegMR(src, uint64(size))
	dstMR := vb.RegMR(dst, uint64(size))
	qa := va.CreateQP(64, 16, 64, false)
	qb := vb.CreateQP(64, 16, 64, false)
	core.ConnectVQPs(qa, qb)

	var b strings.Builder
	fmt.Fprintf(&b, "== InfiniBand: GPU-initiated RDMA write of %d bytes, queues on host ==\n", size)
	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		tb.E.Tracef("gpu: kernel starts, building WQE (%d-instruction post path)", 442)
		va.DevPostSend(w, qa, ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
			LAddr: uint64(src), LKey: srcMR.LKey, Length: size,
			RAddr: uint64(dst), RKey: dstMR.RKey,
		})
		tb.E.Tracef("gpu: doorbell rung, polling send CQ")
		va.DevPollCQ(w, qa.SendCQ)
		tb.E.Tracef("gpu: completion consumed")
	})
	tb.E.Run()
	if !done.Done() {
		panic("putgettrace: IB kernel did not complete")
	}
	b.WriteString(dump(rec))
	fmt.Fprintf(&b, "== write complete at %v ==\n", tb.E.Now())
	return b.String()
}
