// Command putgettrace replays a single GPU-initiated put and prints the
// virtual-time event trace — every PCIe delivery, NIC pipeline stage and
// notification — for teaching and debugging the models.
//
//	putgettrace                 # EXTOLL put, 1KiB
//	putgettrace -fabric ib      # InfiniBand RDMA write
//	putgettrace -size 65536
//	putgettrace -size 64,1024,65536 -parallel 3  # one trace per size
//	putgettrace -json           # machine-readable events
//	putgettrace -filter a.rma   # only the origin NIC's events
//	putgettrace -perfetto t.json # span/metric trace for ui.perfetto.dev
//	putgettrace -drop 0.2 -seed 7 # inject wire loss (retries in trace)
//
// With a comma-separated -size list, each size replays in its own
// isolated simulation; the replays shard over -parallel workers and the
// traces print in the listed order, byte-identical for any worker count.
// -perfetto merges all replays into one trace file, one process per
// replay and one thread track per component.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/runner"
	"putget/internal/sim"
	"putget/internal/trace"
)

// dumpOpts carries the rendering choices into the per-size replays.
type dumpOpts struct {
	json     bool   // emit events as JSON instead of text lines
	filter   string // component/kind segment prefix, "" = everything
	perfetto bool   // also collect span/metric records for export
}

func main() {
	var (
		fabric    = flag.String("fabric", "extoll", "extoll or ib")
		sizes     = flag.String("size", "1024", "payload size in bytes (comma-separated list replays one trace per size)")
		parallel  = flag.Int("parallel", 0, "trace-harness workers (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut   = flag.Bool("json", false, "emit the trace as JSON")
		catFilter = flag.String("filter", "", "only show events from this component prefix")
		perfetto  = flag.String("perfetto", "", "write a Chrome/Perfetto trace-event file to this path")
		dropRate  = flag.Float64("drop", 0, "wire packet-drop probability (enables fault injection + reliability)")
		seed      = flag.Uint64("seed", 0, "fault-injection master seed")
	)
	flag.Parse()

	var trc func(p cluster.Params, size int, opt dumpOpts, pid int) (string, []trace.PerfettoEvent)
	switch *fabric {
	case "extoll":
		trc = traceExtoll
	case "ib":
		trc = traceIB
	default:
		fmt.Fprintln(os.Stderr, "unknown fabric; use extoll or ib")
		os.Exit(1)
	}

	var sz []int
	for _, field := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", field)
			os.Exit(1)
		}
		sz = append(sz, v)
	}

	// Pre-validate the parameter sets the trace cells will build (one per
	// size) so a bad -drop rate fails with a message, not a worker panic.
	for _, size := range sz {
		p := cluster.Default()
		p.GPUDevMemSize = uint64(2*size) + (64 << 20)
		p.HostRAMSize = 96 << 20
		if *dropRate > 0 {
			p.FaultInject = true
			p.FaultSeed = *seed
			p.FaultDropRate = *dropRate
		}
		if err := p.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "putgettrace: %v\n", err)
			os.Exit(1)
		}
	}

	opt := dumpOpts{json: *jsonOut, filter: *catFilter, perfetto: *perfetto != ""}
	results, perf := runTraces(trc, *fabric, sz, *parallel, opt, *dropRate, *seed)

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "putgettrace: %s: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Print(r.Output)
	}
	if failed > 0 {
		os.Exit(1)
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "putgettrace: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WritePerfetto(f, perf); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "putgettrace: write %s: %v\n", *perfetto, err)
			os.Exit(1)
		}
	}
}

// runTraces replays one trace per size, sharded over the worker pool, and
// returns per-size results in listed order plus the merged Perfetto
// records (one process per replay). Each cell fills its own slot, so both
// the text and the Perfetto document are byte-identical for any worker
// count.
func runTraces(trc func(p cluster.Params, size int, opt dumpOpts, pid int) (string, []trace.PerfettoEvent),
	fabric string, sz []int, parallel int, opt dumpOpts, dropRate float64, seed uint64) ([]runner.Result, []trace.PerfettoEvent) {
	perfParts := make([][]trace.PerfettoEvent, len(sz))
	cells := make([]runner.Cell, len(sz))
	for i, size := range sz {
		i, size := i, size
		cells[i] = runner.Cell{Name: fmt.Sprintf("%s/%dB", fabric, size), Run: func() string {
			p := cluster.Default()
			p.GPUDevMemSize = uint64(2*size) + (64 << 20)
			p.HostRAMSize = 96 << 20
			if dropRate > 0 {
				p.FaultInject = true
				p.FaultSeed = seed
				p.FaultDropRate = dropRate
			}
			out, evs := trc(p, size, opt, i)
			perfParts[i] = evs
			return out
		}}
	}
	results := runner.Run(cells, runner.Options{
		Parallel: parallel,
		Progress: func(r runner.Result) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "[%s FAILED after %.1fs]\n", r.Name, r.Elapsed.Seconds())
			}
		},
	})
	var perf []trace.PerfettoEvent
	for _, evs := range perfParts {
		perf = append(perf, evs...)
	}
	return results, perf
}

func attachTrace(e *sim.Engine) *trace.Recorder {
	return trace.Attach(e, 100000)
}

// dump renders the recorded events; traces are returned as strings so the
// sharded harness can merge them in order instead of interleaving writes.
func dump(r *trace.Recorder, opt dumpOpts) string {
	evs := r.Events()
	if opt.filter != "" {
		evs = r.Filter(opt.filter)
	}
	var b strings.Builder
	if opt.json {
		enc := json.NewEncoder(&b)
		enc.SetIndent("", "  ")
		if err := enc.Encode(evs); err != nil {
			panic(fmt.Sprintf("trace encode: %v", err))
		}
		return b.String()
	}
	for _, ev := range evs {
		fmt.Fprintf(&b, "%12v  %s\n", ev.At, ev.Msg)
	}
	return b.String()
}

// export renders the recorder for the merged -perfetto document, or nil
// when no export was requested.
func export(r *trace.Recorder, opt dumpOpts, pid int, process string) []trace.PerfettoEvent {
	if !opt.perfetto {
		return nil
	}
	return r.PerfettoEvents(pid, process)
}

func traceExtoll(p cluster.Params, size int, opt dumpOpts, pid int) (string, []trace.PerfettoEvent) {
	tb := cluster.NewExtollPair(p)
	defer tb.Shutdown()
	rec := attachTrace(tb.E)
	ra, rb := core.NewRMA(tb.A), core.NewRMA(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcN := ra.Register(src, uint64(size))
	dstN := rb.Register(dst, uint64(size))
	ra.OpenPort(0)
	rb.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)

	var b strings.Builder
	fmt.Fprintf(&b, "== EXTOLL: GPU-initiated put of %d bytes, dev2dev-direct ==\n", size)
	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		tb.E.Tracef("gpu: kernel starts, posting WR")
		ra.DevPut(w, 0, srcN, dstN, size, extoll.FlagReqNotif|extoll.FlagCompNotif)
		tb.E.Tracef("gpu: WR posted, polling requester notification")
		//putget:allow boundedwait -- fault-free replay of a known-complete schedule; a Timeout variant would perturb the traced span bytes this tool exists to pin
		ra.DevWaitNotif(w, 0, extoll.ClassRequester)
		tb.E.Tracef("gpu: requester notification consumed")
	})
	tb.E.Run()
	if !done.Done() {
		panic("putgettrace: EXTOLL kernel did not complete")
	}
	b.WriteString(dump(rec, opt))
	fmt.Fprintf(&b, "== put complete at %v ==\n", tb.E.Now())
	return b.String(), export(rec, opt, pid, fmt.Sprintf("extoll/%dB", size))
}

func traceIB(p cluster.Params, size int, opt dumpOpts, pid int) (string, []trace.PerfettoEvent) {
	tb := cluster.NewIBPair(p)
	defer tb.Shutdown()
	rec := attachTrace(tb.E)
	va, vb := core.NewVerbs(tb.A), core.NewVerbs(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcMR := va.RegMR(src, uint64(size))
	dstMR := vb.RegMR(dst, uint64(size))
	qa := va.CreateQP(64, 16, 64, false)
	qb := vb.CreateQP(64, 16, 64, false)
	core.ConnectVQPs(qa, qb)

	var b strings.Builder
	fmt.Fprintf(&b, "== InfiniBand: GPU-initiated RDMA write of %d bytes, queues on host ==\n", size)
	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		tb.E.Tracef("gpu: kernel starts, building WQE (%d-instruction post path)", 442)
		va.DevPostSend(w, qa, ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
			LAddr: uint64(src), LKey: srcMR.LKey, Length: size,
			RAddr: uint64(dst), RKey: dstMR.RKey,
		})
		tb.E.Tracef("gpu: doorbell rung, polling send CQ")
		//putget:allow boundedwait -- fault-free replay of a known-complete schedule; a Timeout variant would perturb the traced span bytes this tool exists to pin
		va.DevPollCQ(w, qa.SendCQ)
		tb.E.Tracef("gpu: completion consumed")
	})
	_ = qb
	tb.E.Run()
	if !done.Done() {
		panic("putgettrace: IB kernel did not complete")
	}
	b.WriteString(dump(rec, opt))
	fmt.Fprintf(&b, "== write complete at %v ==\n", tb.E.Now())
	return b.String(), export(rec, opt, pid, fmt.Sprintf("ib/%dB", size))
}
