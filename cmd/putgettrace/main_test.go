package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"putget/internal/trace"
)

// render concatenates the per-size text outputs and the merged Perfetto
// document for one worker count.
func render(t *testing.T, fabric string, sizes []int, parallel int, drop float64) (string, string) {
	t.Helper()
	trc := traceExtoll
	if fabric == "ib" {
		trc = traceIB
	}
	opt := dumpOpts{perfetto: true}
	results, perf := runTraces(trc, fabric, sizes, parallel, opt, drop, 7)
	var txt strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		txt.WriteString(r.Output)
	}
	var doc bytes.Buffer
	if err := trace.WritePerfetto(&doc, perf); err != nil {
		t.Fatal(err)
	}
	return txt.String(), doc.String()
}

// TestTraceParallelDeterminism: text traces and the merged Perfetto export
// must be byte-identical between -parallel 1 and -parallel 8, with and
// without fault injection.
func TestTraceParallelDeterminism(t *testing.T) {
	sizes := []int{64, 4096}
	for _, tc := range []struct {
		fabric string
		drop   float64
	}{
		{"extoll", 0}, {"ib", 0}, {"extoll", 0.2},
	} {
		txt1, perf1 := render(t, tc.fabric, sizes, 1, tc.drop)
		txt8, perf8 := render(t, tc.fabric, sizes, 8, tc.drop)
		if txt1 != txt8 {
			t.Fatalf("%s drop=%v: text diverged between -parallel 1 and 8", tc.fabric, tc.drop)
		}
		if perf1 != perf8 {
			t.Fatalf("%s drop=%v: perfetto diverged between -parallel 1 and 8", tc.fabric, tc.drop)
		}
	}
}

// TestPerfettoExportShape: the merged document is valid JSON, carries one
// process per replay and a nonzero number of spans.
func TestPerfettoExportShape(t *testing.T) {
	_, doc := render(t, "extoll", []int{64, 1024}, 0, 0)
	var parsed struct {
		TraceEvents []trace.PerfettoEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("perfetto document not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	spans := 0
	for _, ev := range parsed.TraceEvents {
		pids[ev.Pid] = true
		if ev.Ph == "X" {
			spans++
		}
	}
	if len(pids) != 2 {
		t.Fatalf("processes = %d, want one per replay", len(pids))
	}
	if spans == 0 {
		t.Fatal("no complete spans in export")
	}
}
