// Command putgetkv runs the replicated put/get serving workload and
// prints its fault-sweep SLO table.
//
//	putgetkv                       # default cell, default fault plans
//	putgetkv -seed 7 -parallel 8   # different workload seed, 8 workers
//	putgetkv -replicas 7 -rf 3     # wider cluster
//	putgetkv -clients 2 -per-client 40  # smaller, faster cell
//
// Every (fabric, fault plan) cell is an isolated simulation sharded over
// the worker pool; rows assemble in fixed order, so stdout is
// byte-identical for any -parallel value and across repeat runs at a
// fixed -seed. The same table is also reachable as
// `putgetbench -experiment kvserve`.
package main

import (
	"flag"
	"fmt"
	"os"

	"putget/internal/cluster"
	"putget/internal/kv"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 42, "workload master seed (placement, arrivals, fault streams)")
		parallel  = flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = sequential)")
		replicas  = flag.Int("replicas", 0, "replica count (0 = default cell)")
		rf        = flag.Int("rf", 0, "replication factor (0 = default)")
		rQuorum   = flag.Int("r", 0, "read quorum (0 = default)")
		wQuorum   = flag.Int("w", 0, "write quorum (0 = default)")
		clients   = flag.Int("clients", 0, "open-loop client count (0 = default)")
		perClient = flag.Int("per-client", 0, "requests per client (0 = default)")
		putFrac   = flag.Float64("put-frac", -1, "fraction of puts (negative = default)")
		zipf      = flag.Float64("zipf", 0, "key-skew exponent (0 = default)")
		keys      = flag.Int("keys", 0, "key-space size (0 = default)")
	)
	flag.Parse()

	cfg := kv.DefaultConfig(*seed)
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *rf > 0 {
		cfg.RF = *rf
	}
	if *rQuorum > 0 {
		cfg.R = *rQuorum
	}
	if *wQuorum > 0 {
		cfg.W = *wQuorum
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *perClient > 0 {
		cfg.PerClient = *perClient
	}
	if *putFrac >= 0 {
		cfg.PutFrac = *putFrac
	}
	if *zipf > 0 {
		cfg.Zipf = *zipf
	}
	if *keys > 0 {
		cfg.Keys = *keys
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "putgetkv: %v\n", err)
		os.Exit(1)
	}

	p := cluster.Default()
	p.Parallel = *parallel
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "putgetkv: %v\n", err)
		os.Exit(1)
	}

	fmt.Print(kv.Sweep(p, cfg, kv.DefaultPlans()))
}
