// Command putgetcounters prints the paper's performance-counter analyses:
// Table I (EXTOLL polling approaches), Table II (InfiniBand buffer
// placement), the single-operation instruction costs of the device-side
// verbs port, and the ablation studies quantifying the paper's §VI claims.
//
// Each section is an independent simulation, so the sections shard as
// cells over the -parallel worker pool and are printed back in their
// fixed report order; output is byte-identical for any worker count. A
// section that panics fails alone and is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/runner"
)

func main() {
	asic := flag.Bool("asic", false, "use the projected EXTOLL ASIC profile")
	parallel := flag.Int("parallel", 0, "report-harness workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	p := cluster.Default()
	if *asic {
		p = cluster.ASIC()
	}
	p.Parallel = *parallel
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "putgetcounters: %v\n", err)
		os.Exit(1)
	}

	cells := []runner.Cell{
		{Name: "table1", Run: func() string { return bench.Table1(p).Format() }},
		{Name: "table2", Run: func() string { return bench.Table2(p).Format() }},
		{Name: "single-op", Run: func() string {
			post, poll := bench.IBSingleOpInstr(p)
			return fmt.Sprintf("device-side verbs single-op costs (paper: 442 / 283):\n"+
				"  ibv_post_send: %d instructions\n"+
				"  ibv_poll_cq:   %d instructions\n", post, poll)
		}},
		{Name: "endianness", Run: func() string {
			withOpt, withoutOpt := bench.AblationEndianness(p)
			return fmt.Sprintf("ablation: endianness conversion (claim 2)\n"+
				"  post_send with static-field optimization:    %d instructions\n"+
				"  post_send without static-field optimization: %d instructions\n", withOpt, withoutOpt)
		}},
		{Name: "collective-extoll", Run: func() string {
			ex := bench.AblationCollectivePostExtoll(p)
			return fmt.Sprintf("ablation: thread-collective EXTOLL WR write (claim 2)\n"+
				"  single thread: %d instructions, %d PCIe write transactions\n"+
				"  warp (8 lanes): %d instructions, %d PCIe write transactions\n",
				ex.SingleInstr, ex.SingleTxns, ex.CollectiveInstr, ex.CollectiveTxns)
		}},
		{Name: "collective-ib", Run: func() string {
			ib := bench.AblationCollectivePostIB(p)
			return fmt.Sprintf("ablation: warp-cooperative WQE build (claim 2)\n"+
				"  single thread: %d instructions, %d PCIe write transactions\n"+
				"  warp (8 lanes): %d instructions, %d PCIe write transactions\n",
				ib.SingleInstr, ib.SingleTxns, ib.CollectiveInstr, ib.CollectiveTxns)
		}},
		{Name: "notif-placement", Run: func() string {
			host, dev := bench.AblationNotifPlacement(p, 1024)
			return fmt.Sprintf("ablation: EXTOLL notification ring placement (claim 3, 1KiB ping-pong)\n"+
				"  rings in host memory:   latency %v, %d sysmem poll reads over the measured window\n"+
				"  rings in device memory: latency %v, %d sysmem poll reads over the measured window\n",
				host.HalfRTT, host.Counters.SysmemReads32B,
				dev.HalfRTT, dev.Counters.SysmemReads32B)
		}},
		{Name: "p2p-collapse", Run: func() string {
			with, without := bench.AblationP2PCollapse(p)
			return fmt.Sprintf("ablation: PCIe P2P read collapse at 4MiB (Figs. 1b/4b droop)\n"+
				"  with collapse:    %.0f MB/s\n"+
				"  without collapse: %.0f MB/s", with.BytesPerSec/1e6, without.BytesPerSec/1e6)
		}},
	}

	results := runner.Run(cells, runner.Options{
		Parallel: *parallel,
		Progress: func(r runner.Result) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "[%s FAILED after %.1fs]\n", r.Name, r.Elapsed.Seconds())
				return
			}
			fmt.Fprintf(os.Stderr, "[%s completed in %.1fs]\n", r.Name, r.Elapsed.Seconds())
		},
	})

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "putgetcounters: %s: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Println(r.Output)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "putgetcounters: %d/%d sections failed\n", failed, len(results))
		os.Exit(1)
	}
}
