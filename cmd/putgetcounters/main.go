// Command putgetcounters prints the paper's performance-counter analyses:
// Table I (EXTOLL polling approaches), Table II (InfiniBand buffer
// placement), the single-operation instruction costs of the device-side
// verbs port, and the ablation studies quantifying the paper's §VI claims.
package main

import (
	"flag"
	"fmt"

	"putget/internal/bench"
	"putget/internal/cluster"
)

func main() {
	asic := flag.Bool("asic", false, "use the projected EXTOLL ASIC profile")
	flag.Parse()

	p := cluster.Default()
	if *asic {
		p = cluster.ASIC()
	}

	fmt.Println(bench.Table1(p).Format())
	fmt.Println(bench.Table2(p).Format())

	post, poll := bench.IBSingleOpInstr(p)
	fmt.Printf("device-side verbs single-op costs (paper: 442 / 283):\n")
	fmt.Printf("  ibv_post_send: %d instructions\n", post)
	fmt.Printf("  ibv_poll_cq:   %d instructions\n\n", poll)

	withOpt, withoutOpt := bench.AblationEndianness(p)
	fmt.Printf("ablation: endianness conversion (claim 2)\n")
	fmt.Printf("  post_send with static-field optimization:    %d instructions\n", withOpt)
	fmt.Printf("  post_send without static-field optimization: %d instructions\n\n", withoutOpt)

	ex := bench.AblationCollectivePostExtoll(p)
	fmt.Printf("ablation: thread-collective EXTOLL WR write (claim 2)\n")
	fmt.Printf("  single thread: %d instructions, %d PCIe write transactions\n", ex.SingleInstr, ex.SingleTxns)
	fmt.Printf("  warp (8 lanes): %d instructions, %d PCIe write transactions\n\n", ex.CollectiveInstr, ex.CollectiveTxns)

	ib := bench.AblationCollectivePostIB(p)
	fmt.Printf("ablation: warp-cooperative WQE build (claim 2)\n")
	fmt.Printf("  single thread: %d instructions, %d PCIe write transactions\n", ib.SingleInstr, ib.SingleTxns)
	fmt.Printf("  warp (8 lanes): %d instructions, %d PCIe write transactions\n\n", ib.CollectiveInstr, ib.CollectiveTxns)

	host, dev := bench.AblationNotifPlacement(p, 1024)
	fmt.Printf("ablation: EXTOLL notification ring placement (claim 3, 1KiB ping-pong)\n")
	fmt.Printf("  rings in host memory:   latency %v, %d sysmem poll reads over the measured window\n",
		host.HalfRTT, host.Counters.SysmemReads32B)
	fmt.Printf("  rings in device memory: latency %v, %d sysmem poll reads over the measured window\n\n",
		dev.HalfRTT, dev.Counters.SysmemReads32B)

	with, without := bench.AblationP2PCollapse(p)
	fmt.Printf("ablation: PCIe P2P read collapse at 4MiB (Figs. 1b/4b droop)\n")
	fmt.Printf("  with collapse:    %.0f MB/s\n", with.BytesPerSec/1e6)
	fmt.Printf("  without collapse: %.0f MB/s\n", without.BytesPerSec/1e6)
}
