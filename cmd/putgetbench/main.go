// Command putgetbench regenerates the paper's figures and tables.
//
//	putgetbench -list
//	putgetbench -experiment list              # same listing, flag-style
//	putgetbench -experiment fig1a
//	putgetbench -experiment all
//	putgetbench -experiment all -parallel 8   # shard cells over 8 workers
//	putgetbench -experiment fig2 -asic        # projected EXTOLL ASIC
//	putgetbench -experiment fig1b -no-collapse # disable the P2P anomaly
//
// Experiments are sharded across a worker pool at two levels: each
// requested experiment is one cell of the outer pool, and the sweeps
// inside an experiment (mode x size x fault matrices) shard their own
// points over the same worker budget. Every cell runs an isolated
// simulation engine, and results are merged in a fixed order, so stdout
// is byte-identical for any -parallel value. Progress and timing lines go
// to stderr; a crashing cell reports its failure and fails only itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"putget/internal/bench"
	"putget/internal/cluster"
	"putget/internal/runner"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		experiment = flag.String("experiment", "", "experiment id (fig1a..table2) or 'all'")
		asic       = flag.Bool("asic", false, "use the projected EXTOLL ASIC profile")
		noCollapse = flag.Bool("no-collapse", false, "disable the PCIe P2P read collapse (ablation)")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		seed       = flag.Uint64("seed", 0, "fault-injection master seed (faultsweep; 0 = default 42)")
		parallel   = flag.Int("parallel", 0, "experiment-harness workers (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	if *list || *experiment == "" || *experiment == "list" {
		fmt.Println("available experiments:")
		for _, r := range bench.Experiments() {
			fmt.Printf("  %s\n", r.ID)
		}
		fmt.Println("extra diagnostics (not part of 'all'):")
		for _, r := range bench.ExtraExperiments() {
			fmt.Printf("  %s\n", r.ID)
		}
		if *experiment == "" && !*list {
			os.Exit(2)
		}
		return
	}

	p := cluster.Default()
	if *asic {
		p = cluster.ASIC()
	}
	if *noCollapse {
		p.P2PCollapseOff = true
	}
	p.FaultSeed = *seed
	p.Parallel = *parallel
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "putgetbench: %v\n", err)
		os.Exit(1)
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = nil
		for _, r := range bench.Experiments() {
			ids = append(ids, r.ID)
		}
	}

	// Validate every id (and JSON support) before burning simulation time.
	runners := make([]bench.Runner, len(ids))
	for i, id := range ids {
		r, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "putgetbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		if *jsonOut && r.RunJSON == nil {
			fmt.Fprintf(os.Stderr, "putgetbench: experiment %q has no JSON form\n", id)
			os.Exit(1)
		}
		runners[i] = r
	}

	cells := make([]runner.Cell, len(runners))
	for i, r := range runners {
		r := r
		cells[i] = runner.Cell{Name: r.ID, Run: func() string {
			if *jsonOut {
				return r.RunJSON(p)
			}
			return r.Run(p)
		}}
	}
	results := runner.Run(cells, runner.Options{
		Parallel: *parallel,
		Progress: func(r runner.Result) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "[%s FAILED after %.1fs]\n", r.Name, r.Elapsed.Seconds())
				return
			}
			fmt.Fprintf(os.Stderr, "[%s completed in %.1fs wall time]\n", r.Name, r.Elapsed.Seconds())
		},
	})

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "putgetbench: %s: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Println(r.Output)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "putgetbench: %d/%d experiments failed\n", failed, len(results))
		os.Exit(1)
	}
}
