// Command putgetbench regenerates the paper's figures and tables.
//
//	putgetbench -list
//	putgetbench -experiment fig1a
//	putgetbench -experiment all
//	putgetbench -experiment fig2 -asic        # projected EXTOLL ASIC
//	putgetbench -experiment fig1b -no-collapse # disable the P2P anomaly
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"putget"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		experiment = flag.String("experiment", "", "experiment id (fig1a..table2) or 'all'")
		asic       = flag.Bool("asic", false, "use the projected EXTOLL ASIC profile")
		noCollapse = flag.Bool("no-collapse", false, "disable the PCIe P2P read collapse (ablation)")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		seed       = flag.Uint64("seed", 0, "fault-injection master seed (faultsweep; 0 = default 42)")
	)
	flag.Parse()

	if *list || *experiment == "" {
		fmt.Println("available experiments:")
		for _, id := range putget.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		if *experiment == "" && !*list {
			os.Exit(2)
		}
		return
	}

	p := putget.DefaultParams()
	if *asic {
		p = putget.ASICParams()
	}
	if *noCollapse {
		p.P2PCollapseOff = true
	}
	p.FaultSeed = *seed

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = putget.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		var out string
		var err error
		if *jsonOut {
			out, err = putget.RunExperimentJSON(id, p)
		} else {
			out, err = putget.RunExperiment(id, p)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if !*jsonOut {
			fmt.Printf("[%s completed in %.1fs wall time]\n\n", id, time.Since(start).Seconds())
		}
	}
}
