package putget

import (
	"putget/internal/cluster"
	"putget/internal/msg"
	"putget/internal/shmem"
)

// This file re-exports the two communication libraries layered on the
// put/get APIs — the directions the paper's conclusion points to.

// ShmemWorld is a two-PE OpenSHMEM-flavoured GPU job over the EXTOLL
// fabric: symmetric heap, GPU-initiated Put/Get/PutImm, Quiet, Barrier,
// FetchAdd and device-memory WaitUntil. See the allreduce and dotproduct
// examples.
type ShmemWorld = shmem.World

// ShmemPE is one processing element of a ShmemWorld.
type ShmemPE = shmem.PE

// NewShmemWorld builds a two-PE SHMEM job with the given symmetric heap
// size per GPU.
func NewShmemWorld(p Params, heapBytes uint64) *ShmemWorld {
	return shmem.NewWorld(p, heapBytes)
}

// MsgEndpoint is one side of a two-sided (MPI-style) tagged send/recv
// channel over InfiniBand, with eager buffering and an RDMA-READ
// rendezvous protocol — the hybrid-model baseline of the paper's §II-B.
type MsgEndpoint = msg.Endpoint

// NewMsgPair builds two connected message endpoints over a fresh
// InfiniBand testbed and returns them with the underlying cluster.
func NewMsgPair(p Params) (*MsgEndpoint, *MsgEndpoint, *cluster.Testbed) {
	return msg.NewPair(p)
}
