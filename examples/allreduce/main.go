// Allreduce sums a distributed vector across the two GPUs using the
// GPU-SHMEM layer (internal/shmem) — the style of library the paper's
// conclusion calls for. Each PE contributes a vector; after the exchange
// both hold the element-wise sum, with all communication initiated by the
// GPU kernels themselves.
//
//	go run ./examples/allreduce
//	go run ./examples/allreduce -elems 65536
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"putget"
	"putget/internal/gpusim"
	"putget/internal/shmem"
	"putget/internal/sim"
)

func main() {
	elems := flag.Int("elems", 16384, "vector elements (uint64) per PE")
	flag.Parse()

	p := putget.DefaultParams()
	p.GPUDevMemSize = 128 << 20
	bytes := uint64(*elems) * 8

	w := shmem.NewWorld(p, 4*bytes+4096)
	vec := w.Malloc(bytes)     // each PE's contribution, reduced in place
	staging := w.Malloc(bytes) // peer data lands here

	// Fill each PE's vector: PE r holds value (i + r) at index i.
	for r := 0; r < w.N(); r++ {
		buf := make([]byte, bytes)
		for i := 0; i < *elems; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(i+r))
		}
		if err := w.PE(r).HostWrite(vec, buf); err != nil {
			log.Fatal(err)
		}
	}

	var start, end sim.Time
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		if pe.Rank == 0 {
			start = warp.Now()
		}
		// Exchange: put my vector into the peer's staging buffer; the
		// barrier both flushes the puts and orders the reduction.
		pe.Put(warp, staging, vec, int(bytes))
		pe.Quiet(warp)
		pe.Barrier(warp)
		// Reduce: vec[i] += staging[i], a coalesced read-add-write sweep.
		per := 8 * warp.Lanes
		for off := 0; off < int(bytes); off += per {
			vals := warp.LdGlobalU64Coalesced(pe.Addr(staging + uint64(off)))
			mine := warp.LdGlobalU64Coalesced(pe.Addr(vec + uint64(off)))
			for i := range vals {
				vals[i] += mine[i]
			}
			warp.StGlobalU64Coalesced(pe.Addr(vec+uint64(off)), vals)
		}
		pe.Barrier(warp)
		if pe.Rank == 0 {
			end = warp.Now()
		}
	})

	// Verify on both PEs: result[i] = (i+0) + (i+1) = 2i + 1.
	for r := 0; r < w.N(); r++ {
		buf := make([]byte, bytes)
		if err := w.PE(r).HostRead(vec, buf); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *elems; i++ {
			if got := binary.LittleEndian.Uint64(buf[i*8:]); got != uint64(2*i+1) {
				log.Fatalf("PE %d: element %d = %d, want %d", r, i, got, 2*i+1)
			}
		}
	}

	total := end.Sub(start)
	fmt.Printf("allreduce of %d uint64s across 2 GPUs: verified\n", *elems)
	fmt.Printf("virtual time %v (%.1f MB moved at %.0f MB/s effective)\n",
		total, float64(2*bytes)/1e6,
		float64(2*bytes)/1e6/total.Seconds())
}
