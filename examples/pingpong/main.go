// Pingpong sweeps the paper's latency experiment over message sizes and
// control modes for either fabric, printing a Fig. 1a / Fig. 4a style
// table — the smallest complete use of the benchmark API.
//
//	go run ./examples/pingpong
//	go run ./examples/pingpong -fabric ib
package main

import (
	"flag"
	"fmt"

	"putget"
)

func main() {
	fabric := flag.String("fabric", "extoll", "extoll or ib")
	flag.Parse()

	tb := putget.NewExtollTestbed(putget.DefaultParams())
	if *fabric == "ib" {
		tb = putget.NewIBTestbed(putget.DefaultParams())
	}

	modes := []putget.Mode{
		putget.ModeDirect, putget.ModePollOnGPU,
		putget.ModeHostAssisted, putget.ModeHostControlled,
	}
	sizes := []int{4, 64, 1024, 16384, 262144}

	fmt.Printf("one-way latency [us], %s fabric\n", tb.Kind())
	fmt.Printf("%-10s", "size[B]")
	for _, m := range modes {
		fmt.Printf(" %16s", m)
	}
	fmt.Println()
	for _, size := range sizes {
		fmt.Printf("%-10d", size)
		for _, m := range modes {
			res := tb.PingPong(m, size, 8, 2)
			fmt.Printf(" %16.2f", res.HalfRTT.Microseconds())
		}
		fmt.Println()
	}
	fmt.Println("\n(ModeDirect/ModePollOnGPU are GPU-controlled; the GPU penalty")
	fmt.Println(" at small sizes and the convergence at large sizes reproduce the")
	fmt.Println(" paper's Figs. 1a and 4a.)")
}
