// Haloexchange runs the HPC workload the paper's introduction motivates: a
// 2D stencil computation distributed over the two GPUs, exchanging halo
// rows every iteration. It contrasts GPU-controlled communication (the
// kernel itself puts its boundary row and polls for the neighbour's) with
// the host-assisted scheme (the kernel signals the CPU and waits) — the
// choice the paper's analysis informs.
//
//	go run ./examples/haloexchange
//	go run ./examples/haloexchange -n 2048 -iters 50
package main

import (
	"flag"
	"fmt"
	"log"

	"putget"
	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

func main() {
	n := flag.Int("n", 1024, "grid edge length (cells)")
	iters := flag.Int("iters", 20, "stencil iterations")
	flag.Parse()

	fmt.Printf("2D stencil, %dx%d cells per GPU, %d iterations, %dB halos\n\n",
		*n, *n, *iters, *n*8)

	gpuTime := run(*n, *iters, false)
	assistTime := run(*n, *iters, true)

	fmt.Printf("%-28s %12v  (%.2f us/iter)\n", "GPU-controlled exchange:", gpuTime,
		gpuTime.Microseconds()/float64(*iters))
	fmt.Printf("%-28s %12v  (%.2f us/iter)\n", "host-assisted exchange:", assistTime,
		assistTime.Microseconds()/float64(*iters))
	if gpuTime < assistTime {
		fmt.Println("\nGPU-controlled wins: no CPU round trip per halo, and the halo")
		fmt.Println("arrival is detected by polling device memory (pollOnGPU).")
	} else {
		fmt.Println("\nhost-assisted wins here; at this halo size the CPU's cheaper")
		fmt.Println("work-request path beats the GPU's descriptor overhead.")
	}
}

// rank is one side of the distributed stencil.
type rank struct {
	node   *cluster.Node
	rma    *core.RMA
	out    memspace.Addr // outgoing boundary row (local GPU memory)
	in     memspace.Addr // incoming halo row (local GPU memory)
	outN   extoll.NLA    // our boundary row, registered locally
	peerIn extoll.NLA    // the neighbour's halo row, registered remotely
	assist core.AssistFlags
}

// run executes the distributed stencil and returns the virtual time GPU A
// spent from first to last iteration.
func run(n, iters int, hostAssisted bool) sim.Duration {
	tb := putget.NewExtollTestbed(putget.DefaultParams()).Cluster()
	haloBytes := uint64(n * 8) // one row of float64 cells
	stamp := memspace.Addr(haloBytes - 8)

	mk := func(node *cluster.Node) *rank {
		r := &rank{node: node, rma: putget.NewRMA(node)}
		r.out = node.AllocDev(haloBytes)
		r.in = node.AllocDev(haloBytes)
		return r
	}
	a, b := mk(tb.A), mk(tb.B)
	a.outN = a.rma.Register(a.out, haloBytes)
	b.outN = b.rma.Register(b.out, haloBytes)
	a.peerIn = b.rma.Register(b.in, haloBytes) // where A's halo lands on B
	b.peerIn = a.rma.Register(a.in, haloBytes) // where B's halo lands on A
	a.rma.OpenPort(0)
	b.rma.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)

	// ~4 instructions per cell per iteration, spread over 13 SMs of
	// 32-wide warps.
	computeInstr := n * n * 4 / (13 * 32)

	if hostAssisted {
		for _, r := range []*rank{a, b} {
			r := r
			r.assist = core.NewAssistFlags(r.node)
			tb.E.Spawn(r.node.Name+".cpu.halo", func(p *sim.Proc) {
				for it := 1; it <= iters; it++ {
					core.HostAwaitAssistReq(p, r.node.CPU, r.assist, uint64(it))
					r.rma.HostPut(p, 0, r.outN, r.peerIn, int(haloBytes), extoll.FlagReqNotif)
					if _, ok := r.rma.HostWaitNotifTimeout(p, 0, extoll.ClassRequester, 10*sim.Millisecond); !ok {
						panic("haloexchange: host requester notification timed out")
					}
					core.HostAckAssist(p, r.node.CPU, r.assist, uint64(it))
				}
			})
		}
	}

	var startA, endA sim.Time
	launch := func(r *rank, isA bool) *sim.Completion {
		return r.node.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			if isA {
				startA = w.Now()
			}
			for it := 1; it <= iters; it++ {
				// Compute the interior.
				w.Exec(computeInstr)
				// Stamp and send our boundary row to the neighbour.
				w.StGlobalU64(r.out+stamp, uint64(it))
				if hostAssisted {
					core.DevRequestAssist(w, r.assist, uint64(it))
					core.DevAwaitAssistAck(w, r.assist, uint64(it))
				} else {
					r.rma.DevPut(w, 0, r.outN, r.peerIn, int(haloBytes), extoll.FlagReqNotif)
					if _, ok := r.rma.DevWaitNotifTimeout(w, 0, extoll.ClassRequester, 10*sim.Millisecond); !ok {
						panic("haloexchange: requester notification timed out")
					}
				}
				// Wait for the neighbour's halo of this iteration.
				w.PollGlobalU64(r.in+stamp, uint64(it))
			}
			if isA {
				endA = w.Now()
			}
		})
	}
	doneA := launch(a, true)
	doneB := launch(b, false)
	tb.E.Run()
	if !doneA.Done() || !doneB.Done() {
		log.Fatal("halo exchange deadlocked")
	}
	return endA.Sub(startA)
}
