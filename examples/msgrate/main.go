// Msgrate reproduces the message-rate scaling study (Figs. 2 and 5) from
// the public API: 64-byte messages over 1..32 connection pairs, comparing
// CUDA-block agents, per-stream kernels, the host-assisted scheme and
// host-controlled posting, on either fabric.
//
//	go run ./examples/msgrate
//	go run ./examples/msgrate -fabric ib
package main

import (
	"flag"
	"fmt"

	"putget"
)

func main() {
	fabric := flag.String("fabric", "extoll", "extoll or ib")
	perPair := flag.Int("per-pair", 80, "messages per connection pair")
	flag.Parse()

	tb := putget.NewExtollTestbed(putget.DefaultParams())
	if *fabric == "ib" {
		tb = putget.NewIBTestbed(putget.DefaultParams())
	}

	agents := []putget.Agents{
		putget.AgentsBlocks, putget.AgentsKernels,
		putget.AgentsAssisted, putget.AgentsHostControlled,
	}
	fmt.Printf("64B message rate [msgs/s], %s fabric\n", tb.Kind())
	fmt.Printf("%-8s", "pairs")
	for _, a := range agents {
		fmt.Printf(" %22s", a)
	}
	fmt.Println()
	for _, pairs := range []int{1, 2, 4, 8, 16, 32} {
		fmt.Printf("%-8d", pairs)
		for _, a := range agents {
			res := tb.MessageRate(a, pairs, *perPair)
			fmt.Printf(" %22.3g", res.MsgsPerSec)
		}
		fmt.Println()
	}
	fmt.Println("\n(the assisted series flattens beyond ~4 pairs: one CPU thread")
	fmt.Println(" serves every block, so aspirants queue — §V-A.2 / §V-B.2)")
}
