// Dotproduct computes a distributed dot product: each GPU reduces its half
// of two vectors with a classic CUDA-style kernel — coalesced loads,
// shared-memory partial sums, __syncthreads, a global atomic — and the two
// partial results meet over the fabric through the GPU-SHMEM layer. It
// exercises the full block model (multi-warp blocks, shared memory,
// atomics) together with GPU-initiated communication.
//
//	go run ./examples/dotproduct
//	go run ./examples/dotproduct -elems 262144
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"putget"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/shmem"
)

func main() {
	elems := flag.Int("elems", 65536, "vector elements (uint64) per GPU")
	flag.Parse()

	p := putget.DefaultParams()
	p.GPUDevMemSize = 256 << 20
	bytes := uint64(*elems) * 8

	w := shmem.NewWorld(p, 2*bytes+65536)
	x := w.Malloc(bytes)
	y := w.Malloc(bytes)
	partial := w.Malloc(8) // per-PE accumulator (symmetric)
	peerSum := w.Malloc(8) // where the peer's partial lands

	// x[i] = i%7+1, y[i] = i%5+1 on both halves; expected dot product is
	// computable exactly.
	var expect uint64
	for r := 0; r < w.N(); r++ {
		pe := w.PE(r)
		bx := make([]byte, bytes)
		by := make([]byte, bytes)
		for i := 0; i < *elems; i++ {
			g := uint64(r**elems + i)
			xv, yv := g%7+1, g%5+1
			binary.LittleEndian.PutUint64(bx[i*8:], xv)
			binary.LittleEndian.PutUint64(by[i*8:], yv)
			expect += xv * yv
		}
		if err := pe.HostWrite(x, bx); err != nil {
			log.Fatal(err)
		}
		if err := pe.HostWrite(y, by); err != nil {
			log.Fatal(err)
		}
	}

	// Each PE launches a multi-block reduction kernel, then exchanges the
	// partial with the peer and adds. The SPMD shmem.Run gives us one warp
	// per PE for the communication epilogue, so the reduction grid runs
	// first as its own kernel.
	const blocks, threads = 13, 256
	results := make([]uint64, 2)

	for r := 0; r < w.N(); r++ {
		pe := w.PE(r)
		node := pe.Node
		perBlock := (*elems + blocks - 1) / blocks
		node.GPU.Launch(gpusim.KernelConfig{
			Blocks: blocks, ThreadsPerBlock: threads, SharedBytes: 64,
		}, func(warp *gpusim.Warp) {
			// Grid-stride over this block's slice, 32 lanes per warp.
			warpsPerBlock := threads / 32
			lo := warp.Block * perBlock
			hi := lo + perBlock
			if hi > *elems {
				hi = *elems
			}
			var acc uint64
			step := 8 * warp.Lanes * warpsPerBlock
			base := lo*8 + warp.WarpID*8*warp.Lanes
			for off := base; off < hi*8; off += step {
				end := off + 8*warp.Lanes
				if end > hi*8 {
					end = hi * 8
				}
				xs := loadVec(warp, pe.Addr(x+uint64(off)), (end-off)/8)
				ys := loadVec(warp, pe.Addr(y+uint64(off)), (end-off)/8)
				for i := range xs {
					acc += xs[i] * ys[i]
				}
				warp.Exec(2 * len(xs)) // multiply-add per lane pair
			}
			// Shared-memory block reduction, then one global atomic.
			warp.AtomicAddSharedU64(0, acc)
			warp.SyncThreads()
			if warp.WarpID == 0 {
				blockSum := warp.LdSharedU64(0)
				warp.AtomicAddGlobalU64(pe.Addr(partial), blockSum)
			}
		})
	}

	// Exchange partials and combine, GPU-initiated. The epilogue kernel
	// queues behind the reduction kernel on each GPU's default stream, and
	// the closing barrier guarantees the peer's partial has landed.
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		mine := warp.LdGlobalU64(pe.Addr(partial))
		pe.PutImm(warp, peerSum, mine)
		pe.Quiet(warp)
		pe.Barrier(warp)
	})

	// Combine and verify on both PEs.
	for r := 0; r < w.N(); r++ {
		pe := w.PE(r)
		var buf [8]byte
		if err := pe.HostRead(partial, buf[:]); err != nil {
			log.Fatal(err)
		}
		mine := binary.LittleEndian.Uint64(buf[:])
		if err := pe.HostRead(peerSum, buf[:]); err != nil {
			log.Fatal(err)
		}
		theirs := binary.LittleEndian.Uint64(buf[:])
		results[r] = mine + theirs
	}
	if results[0] != expect || results[1] != expect {
		log.Fatalf("dot product = %v, want %d", results, expect)
	}
	fmt.Printf("distributed dot product of 2x%d elements: %d (verified)\n", *elems, expect)
}

// loadVec loads n consecutive 64-bit words as one coalesced warp access.
func loadVec(w *gpusim.Warp, addr memspace.Addr, n int) []uint64 {
	vals := w.LdGlobalU64Coalesced(addr)
	if n < len(vals) {
		vals = vals[:n]
	}
	return vals
}
