// Quickstart: build an EXTOLL testbed, move data GPU-to-GPU with a single
// put initiated by a GPU kernel, verify it arrived, and print the paper's
// headline latency comparison at one message size.
package main

import (
	"bytes"
	"fmt"
	"log"

	"putget"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/sim"
)

func main() {
	params := putget.DefaultParams()

	// ---- 1. one GPU-initiated put, end to end ----
	tb := putget.NewExtollTestbed(params).Cluster()
	rmaA := putget.NewRMA(tb.A)
	rmaB := putget.NewRMA(tb.B)

	const size = 4096
	src := tb.A.AllocDev(size)
	dst := tb.B.AllocDev(size)
	srcNLA := rmaA.Register(src, size)
	dstNLA := rmaB.Register(dst, size)
	rmaA.OpenPort(0)
	rmaB.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(3 * i)
	}
	if err := tb.A.GPU.HostWrite(src, payload); err != nil {
		log.Fatal(err)
	}

	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		// One GPU thread creates the work request (three MMIO stores) and
		// waits for the requester notification — no CPU involved. The
		// bounded wait turns a lost notification into a diagnosable
		// failure instead of a hung kernel.
		rmaA.DevPut(w, 0, srcNLA, dstNLA, size, extoll.FlagReqNotif)
		if _, ok := rmaA.DevWaitNotifTimeout(w, 0, extoll.ClassRequester, 10*sim.Millisecond); !ok {
			panic("quickstart: requester notification timed out")
		}
	})
	tb.E.Run()
	if !done.Done() {
		log.Fatal("kernel did not complete")
	}

	got := make([]byte, size)
	if err := tb.B.GPU.HostRead(dst, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("payload corrupted")
	}
	fmt.Printf("GPU-initiated put: %d bytes GPU A -> GPU B, verified, virtual time %v\n\n", size, tb.E.Now())

	// ---- 2. the paper's four control modes at 1 KiB ----
	fmt.Println("EXTOLL one-way latency at 1KiB (paper Fig. 1a cross-section):")
	bench := putget.NewExtollTestbed(params)
	for _, mode := range []putget.Mode{
		putget.ModeHostControlled, putget.ModePollOnGPU,
		putget.ModeHostAssisted, putget.ModeDirect,
	} {
		res := bench.PingPong(mode, 1024, 10, 2)
		fmt.Printf("  %-16s %8.2f us\n", mode, res.HalfRTT.Microseconds())
	}
}
