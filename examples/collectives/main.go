// Collectives sums a vector across N GPUs with device-initiated put/get —
// the multi-node collective workload the paper's put/get APIs are
// motivated by. Each rank is one node of a switched cluster (fat-tree or
// 3D torus); the GPU kernels themselves move the data and detect arrival
// by polling device memory, with no CPU on the critical path.
//
//	go run ./examples/collectives
//	go run ./examples/collectives -ranks 64 -topo torus -fabric ib
//	go run ./examples/collectives -ranks 32 -alg ring -words 1024
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/shmem"
	"putget/internal/topo"
	"putget/internal/transport"
)

func main() {
	ranks := flag.Int("ranks", 16, "PE count (one per cluster node)")
	topoName := flag.String("topo", "fattree", "switch topology: fattree or torus")
	fabric := flag.String("fabric", "extoll", "NIC family: extoll or ib")
	algName := flag.String("alg", "rdouble", "algorithm: ring or rdouble (recursive doubling)")
	words := flag.Int("words", 256, "vector length in 64-bit words")
	flag.Parse()

	spec := topo.Spec{Kind: topo.FatTree}
	if *topoName == "torus" {
		spec.Kind = topo.Torus3D
	}
	kind := transport.KindExtoll
	if *fabric == "ib" {
		kind = transport.KindIB
	}
	alg := shmem.RecursiveDoubling
	if *algName == "ring" {
		alg = shmem.Ring
	}

	p := cluster.Default()
	p.GPUDevMemSize = 64 << 20 // shrink per-node footprints: n ranks = n GPUs
	p.HostRAMSize = 96 << 20
	w := shmem.NewWorldN(kind, spec, *ranks, p, 1<<20)
	defer w.Shutdown()

	vec := w.Malloc(uint64(8 * *words))
	plan := w.NewAllReduce(alg, vec, *words) // connects its peers, allocates staging

	// Seed rank r's element i with r+i+1 (host-side, zero sim time).
	buf := make([]byte, 8**words)
	for r := 0; r < w.N(); r++ {
		for i := 0; i < *words; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(r+i+1))
		}
		if err := w.PE(r).HostWrite(vec, buf); err != nil {
			log.Fatal(err)
		}
	}

	// SPMD: every PE runs the same kernel; the plan does the rest.
	t0 := w.CL.E.Now()
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	elapsed := w.CL.E.Now().Sub(t0)

	// Every rank must now hold element i = n*(i+1) + n*(n-1)/2.
	n := w.N()
	for r := 0; r < n; r++ {
		if err := w.PE(r).HostRead(vec, buf); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *words; i++ {
			want := uint64(n*(i+1) + n*(n-1)/2)
			if got := binary.LittleEndian.Uint64(buf[8*i:]); got != want {
				log.Fatalf("rank %d element %d = %d, want %d", r, i, got, want)
			}
		}
	}
	fmt.Printf("allreduce(%s) of %d x 8B over %d ranks (%s, %s): correct on every rank\n",
		alg, *words, n, spec.Kind, kind)
	fmt.Printf("completion time: %.1f us\n", elapsed.Microseconds())
}
